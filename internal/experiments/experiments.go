// Package experiments implements the reproduction of every
// quantitative table and figure of the paper (see DESIGN.md §4 for the
// index). Each experiment returns ready-to-print tables; cmd/tables
// and the benchmark suite share these entry points.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/rules"
	"repro/internal/rulesets"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// paperTable1 is the size column of the paper's Table 1, for
// side-by-side comparison.
var paperTable1 = map[string]string{
	"incoming_message":          "1024 x 8",
	"in_message_ft":             "256 x 7",
	"update_dir_table":          "64 x 28",
	"message_finished":          "64 x 8",
	"calculate_new_node_state":  "64 x 9",
	"test_exception":            "32 x 9",
	"tell_my_neighbors":         "16 x 4",
	"flit_finished":             "4 x 4",
	"fault_occured":             "3 x 4",
	"message_from_info_channel": "2 x 3",
	"consider_neighbor_state":   "2 x 7",
}

// paperTable2 likewise for Table 2 (d=6, a=2).
var paperTable2 = map[string]string{
	"decide_dir":   "512 x 4",
	"decide_vc":    "24 x 3", // (4*d) x (1+a) at d=6, a=2
	"update_state": "180 x 7",
	"adaptivity":   "(unspecified)",
}

// paperBaseTable is the single emission path for the paper's rule-base
// tables: one row per rule base in meta order, sizes and FCFB strings
// taken from the same core.BaseCost accessors cmd/rulec's cost report
// uses (golden tests pin both outputs against each other).
func paperBaseTable(title, paperCol string, metas []rulesets.BaseMeta, pc *core.ProgramCost, paper map[string]string) *metrics.Table {
	byName := map[string]*core.BaseCost{}
	for i := range pc.Bases {
		byName[pc.Bases[i].Name] = &pc.Bases[i]
	}
	tb := metrics.NewTable(title, "name", "size", paperCol, "FCFBs", "meaning", "nft")
	for _, m := range metas {
		bc := byName[m.Name]
		nft := ""
		if m.NFT {
			nft = "*"
		}
		tb.AddRow(m.Name, bc.Dim(), paper[m.Name], bc.FCFBString(), m.Meaning, nft)
	}
	return tb
}

// Table1 regenerates the paper's Table 1: the rule bases of NAFTA with
// their compiled table sizes, FCFB inventory and nft markers.
func Table1() (*metrics.Table, error) {
	p, err := rulesets.LoadNAFTA()
	if err != nil {
		return nil, err
	}
	pc, err := core.AnalyzeCost(p.Checked, core.CompileOptions{})
	if err != nil {
		return nil, err
	}
	return paperBaseTable("Table 1: rule bases of NAFTA", "paper size",
		rulesets.NAFTAMeta, pc, paperTable1), nil
}

// Table2 regenerates the paper's Table 2 for the given hypercube
// dimension and adaptivity width (the paper uses d=6, a=2).
func Table2(d, a int) (*metrics.Table, int64, error) {
	p, err := rulesets.LoadRouteC(d, a)
	if err != nil {
		return nil, 0, err
	}
	pc, err := core.AnalyzeCost(p.Checked, core.CompileOptions{})
	if err != nil {
		return nil, 0, err
	}
	tb := paperBaseTable(fmt.Sprintf("Table 2: rule bases of ROUTE_C (d=%d, a=%d)", d, a),
		"paper size (d=6,a=2)", rulesets.RouteCMeta, pc, paperTable2)
	return tb, pc.TotalTableBits, nil
}

// E3Registers reports the register accounting: NAFTA's total and
// FT-only bits (paper: 159 bits in 8 registers, 47 of them for fault
// tolerance) and ROUTE_C's growth with the dimension (paper: 15d +
// 2 log d + 3 bits in 9 registers, 9d of them without fault
// tolerance).
func E3Registers() (*metrics.Table, error) {
	tb := metrics.NewTable("E3: register bits",
		"program", "registers", "bits", "ft-only bits", "paper")
	nafta, err := rulesets.LoadNAFTA()
	if err != nil {
		return nil, err
	}
	rc := core.RegisterUsage(nafta.Checked)
	total, ftOnly, err := nafta.FTOnlyRegisterBits()
	if err != nil {
		return nil, err
	}
	tb.AddRow("NAFTA", rc.Registers, total, ftOnly, "159 bits, 8 regs, 47 ft")
	for _, d := range []int{3, 4, 5, 6, 7, 8} {
		p, err := rulesets.LoadRouteC(d, 2)
		if err != nil {
			return nil, err
		}
		rc := core.RegisterUsage(p.Checked)
		tot, ft, err := p.FTOnlyRegisterBits()
		if err != nil {
			return nil, err
		}
		paper := fmt.Sprintf("%d bits (15d+2logd+3)", 15*d+2*int(math.Ceil(math.Log2(float64(d))))+3)
		tb.AddRow(fmt.Sprintf("ROUTE_C d=%d", d), rc.Registers, tot, ft, paper)
	}
	return tb, nil
}

// E4Steps measures the rule interpretations per routing decision: the
// structural per-algorithm step counts (paper Section 5) and the mean
// steps per delivered message in a simulation with faults.
func E4Steps() (*metrics.Table, error) {
	tb := metrics.NewTable("E4: rule interpretations per routing decision",
		"algorithm", "fault-free steps", "worst-case steps", "measured avg steps/hop (faulty net)", "paper")

	type row struct {
		name   string
		ff, wc int
		mk     func() (topology.Graph, routing.Algorithm, *fault.Set)
		paper  string
	}
	meshFaults := func() *fault.Set {
		m := topology.NewMesh(8, 8)
		f := fault.NewSet()
		f.FailNode(m.Node(3, 3))
		f.FailNode(m.Node(4, 4))
		return f
	}
	rows := []row{
		{"NARA", 1, 1, func() (topology.Graph, routing.Algorithm, *fault.Set) {
			m := topology.NewMesh(8, 8)
			return m, routing.NewNARA(m), fault.NewSet()
		}, "1"},
		{"NAFTA", 1, 3, func() (topology.Graph, routing.Algorithm, *fault.Set) {
			m := topology.NewMesh(8, 8)
			return m, routing.NewNAFTA(m), meshFaults()
		}, "1 fault-free, 3 worst case"},
		{"ROUTE_C", 2, 2, func() (topology.Graph, routing.Algorithm, *fault.Set) {
			h := topology.NewHypercube(5)
			f, _ := fault.Random(h, fault.RandomOptions{Nodes: 2, Seed: 4, KeepConnected: true})
			return h, routing.NewRouteC(h), f
		}, "2"},
		{"ROUTE_C-nft", 1, 1, func() (topology.Graph, routing.Algorithm, *fault.Set) {
			h := topology.NewHypercube(5)
			return h, routing.NewRouteCNFT(h), fault.NewSet()
		}, "1"},
	}
	for _, r := range rows {
		g, alg, f := r.mk()
		res, err := sim.Run(sim.Config{
			Graph: g, Algorithm: alg, Faults: f,
			Rate: 0.05, Length: 6, Seed: 5,
			WarmupCycles: 300, MeasureCycles: 1500,
		})
		if err != nil {
			return nil, err
		}
		// One routing decision happens per hop (at the source and at
		// every intermediate router; the destination only ejects).
		perHop := 0.0
		if res.Stats.HopsSum > 0 {
			perHop = float64(res.Stats.StepsSum) / float64(res.Stats.HopsSum)
		}
		tb.AddRow(r.name, r.ff, r.wc, fmt.Sprintf("%.2f", perHop), r.paper)
	}
	return tb, nil
}

// E5Merged measures the exponential blowup of merging decide_dir and
// decide_vc into one rule base (the paper: a merged configuration
// needs a 1024*2^d x (d+1+a) bit rule table).
func E5Merged() (*metrics.Table, error) {
	tb := metrics.NewTable("E5: split vs merged decision rule bases (ROUTE_C)",
		"d", "split entries", "split bits", "merged entries", "merged bits", "paper merged bits")
	for _, d := range []int{3, 4, 5, 6, 7, 8} {
		p, err := rulesets.LoadRouteC(d, 2)
		if err != nil {
			return nil, err
		}
		pc, err := core.AnalyzeCost(p.Checked, core.CompileOptions{})
		if err != nil {
			return nil, err
		}
		var splitEntries, splitBits int64
		for _, b := range pc.Bases {
			if b.Name == "decide_dir" || b.Name == "decide_vc" {
				splitEntries += b.Entries
				splitBits += b.MemoryBits
			}
		}
		prog, err := rules.Parse(rulesets.MergedDecideSource(d, 2))
		if err != nil {
			return nil, err
		}
		mc, err := rules.Analyze(prog)
		if err != nil {
			return nil, err
		}
		cb, err := core.CompileBase(mc, "decide_merged", core.CompileOptions{SizeOnly: true})
		if err != nil {
			return nil, err
		}
		paper := int64(1024) * (1 << uint(d)) * int64(d+1+2)
		tb.AddRow(d, splitEntries, splitBits, cb.Entries, cb.MemoryBits(), paper)
	}
	return tb, nil
}

// E6FaultChain reproduces the Figure 2 argument: a chain of faulty
// links attached to the border. Correct side selection at the chain
// head needs knowledge growing with the chain length |F|; NAFTA's
// per-node state is what our implementation stores (a clear-run
// counter of ceil(log2 W) bits per direction), and the residual
// condition-3 violations are counted.
func E6FaultChain(w, h int) (*metrics.Table, error) {
	m := topology.NewMesh(w, h)
	tb := metrics.NewTable(fmt.Sprintf("E6: fault chain on %s (Figure 2)", m.Name()),
		"chain len |F|", "reachable pairs", "delivered", "violations", "avg detour excess",
		"list-of-faults bits", "per-node state bits")
	for _, L := range []int{1, 2, 3, 4, 5, 6} {
		if L >= w {
			break
		}
		f, err := fault.Chain(m, h/2, L)
		if err != nil {
			return nil, err
		}
		alg := routing.NewNAFTA(m)
		alg.UpdateFaults(f)
		filter := f.Filter()
		reachable, delivered := 0, 0
		var excess, excessN int64
		for s := 0; s < m.Nodes(); s++ {
			for d := 0; d < m.Nodes(); d++ {
				if s == d {
					continue
				}
				src, dst := topology.NodeID(s), topology.NodeID(d)
				if !topology.Reachable(m, src, dst, filter) {
					continue
				}
				reachable++
				ok, hops := walkOnce(m, alg, src, dst, 6*m.Nodes())
				if ok {
					delivered++
					short := topology.BFSDist(m, src, filter)[dst]
					excess += int64(hops - short)
					excessN++
				}
			}
		}
		listBits := L * int(math.Ceil(math.Log2(float64(m.Nodes()))))
		stateBits := 4 * int(math.Ceil(math.Log2(float64(w)))) // clear-run counters
		avgExcess := 0.0
		if excessN > 0 {
			avgExcess = float64(excess) / float64(excessN)
		}
		tb.AddRow(L, reachable, delivered, reachable-delivered,
			fmt.Sprintf("%.2f", avgExcess), listBits, stateBits)
	}
	return tb, nil
}

// walkOnce drives one message without contention (FirstFit).
func walkOnce(g topology.Graph, alg routing.Algorithm, src, dst topology.NodeID, maxHops int) (bool, int) {
	hdr := &routing.Header{Src: src, Dst: dst, Length: 4}
	req := routing.Request{Node: src, InPort: routing.InjectionPort, Hdr: hdr}
	hops := 0
	for req.Node != dst {
		cands := alg.Route(req)
		if len(cands) == 0 {
			return false, hops
		}
		alg.NoteHop(req, cands[0])
		next := g.Neighbor(req.Node, cands[0].Port)
		back, _ := g.PortTo(next, req.Node)
		req = routing.Request{Node: next, InPort: back, InVC: cands[0].VC, Hdr: hdr}
		if hops++; hops > maxHops {
			return false, hops
		}
	}
	return true, hops
}

// E7LatencyVsLoad produces the latency/throughput-vs-offered-load
// curves: mesh (XY vs NARA vs NAFTA) and hypercube (e-cube vs ROUTE_C
// vs stripped ROUTE_C), fault-free.
func E7LatencyVsLoad(quick bool) (*metrics.Table, *metrics.Table, error) {
	rates := []float64{0.05, 0.15, 0.25, 0.35, 0.45}
	measure := int64(4000)
	if quick {
		rates = []float64{0.05, 0.25}
		measure = 1200
	}
	meshTb := metrics.NewTable("E7a: 16x16 mesh, fault-free (uniform and adversarial transpose)",
		"algorithm", "pattern", "load (flits/node/cyc)", "avg latency", "throughput", "queue growth")
	m := topology.NewMesh(16, 16)
	meshAlgs := []func() routing.Algorithm{
		func() routing.Algorithm { return routing.NewXY(m) },
		func() routing.Algorithm { return routing.NewNARA(m) },
		func() routing.Algorithm { return routing.NewNAFTA(m) },
	}
	meshPatterns := []traffic.Pattern{
		traffic.Uniform{Nodes: m.Nodes()},
		traffic.Transpose{Mesh: m},
	}
	for _, pat := range meshPatterns {
		for _, mk := range meshAlgs {
			for _, rate := range rates {
				alg := mk()
				res, err := sim.Run(sim.Config{
					Graph: m, Algorithm: alg, Pattern: pat, Rate: rate, Length: 8, Seed: 42,
					WarmupCycles: 800, MeasureCycles: measure,
				})
				if err != nil {
					return nil, nil, err
				}
				meshTb.AddRow(alg.Name(), pat.Name(), rate, fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()),
					fmt.Sprintf("%.3f", res.Throughput()), res.QueueGrowth)
			}
		}
	}
	cubeTb := metrics.NewTable("E7b: 64-node hypercube, uniform traffic, fault-free",
		"algorithm", "load (flits/node/cyc)", "avg latency", "throughput", "queue growth")
	hc := topology.NewHypercube(6)
	cubeAlgs := []func() routing.Algorithm{
		func() routing.Algorithm { return routing.NewECube(hc) },
		func() routing.Algorithm { return routing.NewRouteCNFT(hc) },
		func() routing.Algorithm { return routing.NewRouteC(hc) },
	}
	for _, mk := range cubeAlgs {
		for _, rate := range rates {
			alg := mk()
			res, err := sim.Run(sim.Config{
				Graph: hc, Algorithm: alg, Rate: rate, Length: 8, Seed: 42,
				WarmupCycles: 800, MeasureCycles: measure,
			})
			if err != nil {
				return nil, nil, err
			}
			cubeTb.AddRow(alg.Name(), rate, fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()),
				fmt.Sprintf("%.3f", res.Throughput()), res.QueueGrowth)
		}
	}
	return meshTb, cubeTb, nil
}

// E8Degradation measures graceful degradation: delivery ratio, latency
// and throughput as the number of node faults grows, for the
// fault-tolerant algorithms, the oblivious baselines and the
// spanning-tree strawman.
func E8Degradation(quick bool) (*metrics.Table, *metrics.Table, error) {
	counts := []int{0, 2, 4, 6, 8}
	measure := int64(3000)
	if quick {
		counts = []int{0, 4}
		measure = 1000
	}
	m := topology.NewMesh(12, 12)
	meshTb := metrics.NewTable("E8a: 12x12 mesh, 0.10 flits/node/cyc, node faults",
		"algorithm", "faults", "delivered ratio", "avg latency", "throughput", "misroutes/msg")
	meshAlgs := []func() routing.Algorithm{
		func() routing.Algorithm { return routing.NewXY(m) },
		func() routing.Algorithm { return routing.NewTree(m) },
		func() routing.Algorithm { return routing.NewNAFTA(m) },
	}
	for _, mk := range meshAlgs {
		for _, k := range counts {
			f, err := fault.Random(m, fault.RandomOptions{Nodes: k, Seed: 11, KeepConnected: true})
			if err != nil {
				return nil, nil, err
			}
			alg := mk()
			res, err := sim.Run(sim.Config{
				Graph: m, Algorithm: alg, Faults: f, Rate: 0.10, Length: 8, Seed: 13,
				WarmupCycles: 600, MeasureCycles: measure,
			})
			if err != nil {
				return nil, nil, err
			}
			mis := 0.0
			if res.Stats.Delivered > 0 {
				mis = float64(res.Stats.MisroutesSum) / float64(res.Stats.Delivered)
			}
			meshTb.AddRow(alg.Name(), k, fmt.Sprintf("%.3f", res.Stats.DeliveredRatio()),
				fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()),
				fmt.Sprintf("%.3f", res.Throughput()), fmt.Sprintf("%.2f", mis))
		}
	}
	hc := topology.NewHypercube(6)
	cubeTb := metrics.NewTable("E8b: 64-node hypercube, 0.10 flits/node/cyc, node faults",
		"algorithm", "faults", "delivered ratio", "avg latency", "throughput", "misroutes/msg")
	cubeAlgs := []func() routing.Algorithm{
		func() routing.Algorithm { return routing.NewECube(hc) },
		func() routing.Algorithm { return routing.NewRouteC(hc) },
	}
	cubeCounts := []int{0, 2, 4, 5} // n-1 = 5 is the guarantee bound
	if quick {
		cubeCounts = []int{0, 4}
	}
	for _, mk := range cubeAlgs {
		for _, k := range cubeCounts {
			f, err := fault.Random(hc, fault.RandomOptions{Nodes: k, Seed: 11, KeepConnected: true})
			if err != nil {
				return nil, nil, err
			}
			alg := mk()
			res, err := sim.Run(sim.Config{
				Graph: hc, Algorithm: alg, Faults: f, Rate: 0.10, Length: 8, Seed: 13,
				WarmupCycles: 600, MeasureCycles: measure,
			})
			if err != nil {
				return nil, nil, err
			}
			mis := 0.0
			if res.Stats.Delivered > 0 {
				mis = float64(res.Stats.MisroutesSum) / float64(res.Stats.Delivered)
			}
			cubeTb.AddRow(alg.Name(), k, fmt.Sprintf("%.3f", res.Stats.DeliveredRatio()),
				fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()),
				fmt.Sprintf("%.3f", res.Throughput()), fmt.Sprintf("%.2f", mis))
		}
	}
	return meshTb, cubeTb, nil
}

// E9DecisionTime measures the impact of the routing-decision time on
// network latency (the claim of [DLO97] the paper builds on): the
// per-step cycle cost is swept while NAFTA routes a faulty mesh, where
// fault handling costs extra interpretation steps.
func E9DecisionTime(quick bool) (*metrics.Table, error) {
	m := topology.NewMesh(12, 12)
	f := fault.NewSet()
	f.FailNode(m.Node(5, 5))
	f.FailNode(m.Node(6, 6))
	measure := int64(3000)
	if quick {
		measure = 1000
	}
	tb := metrics.NewTable("E9: decision time vs network latency (NAFTA, 12x12 mesh, 2 faults)",
		"cycles/step", "load", "avg latency", "throughput")
	for _, cyc := range []int{1, 2, 3, 4} {
		for _, rate := range []float64{0.05, 0.20} {
			alg := routing.NewNAFTA(m)
			res, err := sim.Run(sim.Config{
				Graph: m, Algorithm: alg, Faults: f, Rate: rate, Length: 8, Seed: 19,
				DecisionCyclesPerStep: cyc,
				WarmupCycles:          600, MeasureCycles: measure,
			})
			if err != nil {
				return nil, err
			}
			tb.AddRow(cyc, rate, fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()),
				fmt.Sprintf("%.3f", res.Throughput()))
		}
	}
	return tb, nil
}

// E10Ablations evaluates the design choices: convex fault-block
// completion on/off, the adaptivity selection policy, and the ARON
// direct-indexing optimisation.
func E10Ablations(quick bool) ([]*metrics.Table, error) {
	measure := int64(2500)
	if quick {
		measure = 1000
	}
	var out []*metrics.Table

	// (a) Convex completion on/off under a concave (L-shaped) fault
	// pattern — the case the completion exists for.
	m := topology.NewMesh(12, 12)
	blocksTb := metrics.NewTable("E10a: NAFTA convex completion ablation (12x12, L-shaped fault region)",
		"variant", "deactivated nodes", "delivered ratio", "avg latency", "misroutes/msg")
	for _, disable := range []bool{false, true} {
		f, err := fault.LShape(m, 4, 4, 4, 4)
		if err != nil {
			return nil, err
		}
		alg := routing.NewNAFTA(m)
		alg.DisableBlocks = disable
		res, err := sim.Run(sim.Config{
			Graph: m, Algorithm: alg, Faults: f, Rate: 0.08, Length: 8, Seed: 29,
			WarmupCycles: 600, MeasureCycles: measure,
		})
		if err != nil {
			return nil, err
		}
		name := "convex completion"
		deactivated := 0
		if blocks := alg.Blocks(); blocks != nil {
			deactivated = blocks.Deactivated
		}
		if disable {
			name = "raw faults only"
		}
		mis := 0.0
		if res.Stats.Delivered > 0 {
			mis = float64(res.Stats.MisroutesSum) / float64(res.Stats.Delivered)
		}
		blocksTb.AddRow(name, deactivated, fmt.Sprintf("%.3f", res.Stats.DeliveredRatio()),
			fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()), fmt.Sprintf("%.2f", mis))
	}
	out = append(out, blocksTb)

	// (b) Selection policy on the adversarial transpose pattern.
	selTb := metrics.NewTable("E10b: adaptivity criterion (NARA, 8x8 transpose, 0.5 load)",
		"selector", "throughput", "avg latency")
	m8 := topology.NewMesh(8, 8)
	sels := []routing.Selector{routing.FirstFit{}, routing.MaxCredit{}, routing.MinQueue{}, routing.NewRoundRobin()}
	for _, sel := range sels {
		res, err := sim.Run(sim.Config{
			Graph: m8, Algorithm: routing.NewNARA(m8), Selector: sel,
			Pattern: traffic.Transpose{Mesh: m8},
			Rate:    0.5, Length: 8, Seed: 31,
			WarmupCycles: 500, MeasureCycles: measure,
		})
		if err != nil {
			return nil, err
		}
		selTb.AddRow(sel.Name(), fmt.Sprintf("%.3f", res.Throughput()),
			fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()))
	}
	out = append(out, selTb)

	// (c) ARON premise structuring ablation: subbase modularisation
	// and direct indexing on/off for the NAFTA decision bases.
	p, err := rulesets.LoadNAFTA()
	if err != nil {
		return nil, err
	}
	monoProg, err := rules.Parse(rulesets.NAFTAMonolithicDecisionSource())
	if err != nil {
		return nil, err
	}
	mono, err := rules.Analyze(monoProg)
	if err != nil {
		return nil, err
	}
	idxTb := metrics.NewTable("E10c: ARON premise-structuring ablation (NAFTA decision bases, bits)",
		"rule base", "subbases+fields", "monolithic, fields", "monolithic, features only")
	for _, name := range []string{"in_message_ft", "test_exception"} {
		with, err := core.CompileBase(p.Checked, name, core.CompileOptions{})
		if err != nil {
			return nil, err
		}
		monoFields, err := core.CompileBase(mono, name, core.CompileOptions{SizeOnly: true})
		if err != nil {
			return nil, err
		}
		monoFlat, err := core.CompileBase(mono, name, core.CompileOptions{NoFields: true, SizeOnly: true})
		if err != nil {
			return nil, err
		}
		idxTb.AddRow(name, with.MemoryBits(), monoFields.MemoryBits(), monoFlat.MemoryBits())
	}
	out = append(out, idxTb)
	return out, nil
}

// E11NegHop contrasts the two ways Section 3 describes for buying
// fault-tolerant deadlock freedom: NAFTA's two virtual channels plus
// distributed fault state, and the negative-hop scheme's pure VC
// budget with zero fault state ("for the negative hop scheme ... no
// changes to the deadlock avoidance are necessary at all"). The VC
// count is swept; delivery and latency show what the missing fault
// knowledge costs.
func E11NegHop(quick bool) (*metrics.Table, error) {
	measure := int64(2500)
	if quick {
		measure = 1000
	}
	m := topology.NewMesh(12, 12)
	f, err := fault.Random(m, fault.RandomOptions{Nodes: 6, Seed: 5, KeepConnected: true})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("E11: VC budget vs fault state (12x12 mesh, 6 node faults, 0.08 load)",
		"algorithm", "VCs", "fault state", "delivered ratio", "avg latency", "misroutes/msg")
	run := func(alg routing.Algorithm, state string) error {
		res, err := sim.Run(sim.Config{
			Graph: m, Algorithm: alg, Faults: f, Rate: 0.08, Length: 8, Seed: 7,
			WarmupCycles: 600, MeasureCycles: measure,
		})
		if err != nil {
			return err
		}
		mis := 0.0
		if res.Stats.Delivered > 0 {
			mis = float64(res.Stats.MisroutesSum) / float64(res.Stats.Delivered)
		}
		tb.AddRow(alg.Name(), alg.NumVCs(), state,
			fmt.Sprintf("%.3f", res.Stats.DeliveredRatio()),
			fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()), fmt.Sprintf("%.2f", mis))
		return nil
	}
	for _, vcs := range []int{4, 8, 12, 16} {
		alg, err := routing.NewNegHop(m, vcs)
		if err != nil {
			return nil, err
		}
		if err := run(alg, "none (local only)"); err != nil {
			return nil, err
		}
	}
	if err := run(routing.NewNAFTA(m), "propagated per-node"); err != nil {
		return nil, err
	}
	return tb, nil
}

// E12Reconfiguration quantifies the paper's motivating claim (Section
// 1): if the network handles faults itself, the reconfiguration
// overhead after a fault shrinks to a minimum. A fault hits a loaded
// mesh mid-run; the spanning-tree strawman must rebuild its global
// tree (killing and detouring everything over fresh paths), while
// NAFTA only propagates local state. Reported: messages killed by the
// event, delivery before/after, and the latency penalty after the
// fault.
func E12Reconfiguration(quick bool) (*metrics.Table, error) {
	phase := int64(2500)
	if quick {
		phase = 1200
	}
	m := topology.NewMesh(12, 12)
	victim := m.Node(6, 6)
	tb := metrics.NewTable("E12: reconfiguration after a mid-run node fault (12x12 mesh, 0.10 load)",
		"algorithm", "killed by event", "latency before", "latency after", "delivered after")
	for _, mk := range []func() routing.Algorithm{
		func() routing.Algorithm { return routing.NewTree(m) },
		func() routing.Algorithm { return routing.NewUpDown(m) },
		func() routing.Algorithm { return routing.NewNAFTA(m) },
	} {
		alg := mk()
		// Phase 1: fault-free steady state.
		before, err := sim.Run(sim.Config{
			Graph: m, Algorithm: alg, Rate: 0.10, Length: 8, Seed: 37,
			WarmupCycles: 600, MeasureCycles: phase,
		})
		if err != nil {
			return nil, err
		}
		// Phase 2: same configuration, but the fault fires just inside
		// the measurement window, so the killed messages and the
		// latency disturbance of the reconfiguration are captured.
		alg2 := mk()
		sched2 := fault.NewSchedule(nil)
		sched2.AddNodeFault(700, victim)
		after, err := sim.Run(sim.Config{
			Graph: m, Algorithm: alg2, Rate: 0.10, Length: 8, Seed: 37,
			FaultSchedule: sched2,
			WarmupCycles:  600,
			MeasureCycles: phase,
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(alg2.Name(), after.Stats.Killed,
			fmt.Sprintf("%.1f", before.Stats.AvgNetLatency()),
			fmt.Sprintf("%.1f", after.Stats.AvgNetLatency()),
			fmt.Sprintf("%.3f", after.Stats.DeliveredRatio()))
	}
	return tb, nil
}

// E13MarkedPriority measures the Section 3 fairness suggestion: favour
// messages misrouted by faults in switch allocation "to compensate the
// double disadvantage of the longer path and higher loaded links".
func E13MarkedPriority(quick bool) (*metrics.Table, error) {
	measure := int64(3000)
	if quick {
		measure = 1200
	}
	m := topology.NewMesh(12, 12)
	f, err := fault.Random(m, fault.RandomOptions{Nodes: 5, Seed: 41, KeepConnected: true})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("E13: favouring fault-detoured messages (NAFTA, 12x12, 5 faults, 0.15 load)",
		"policy", "avg latency", "p99 latency", "marked msgs", "delivered ratio")
	for _, favor := range []bool{false, true} {
		alg := routing.NewNAFTA(m)
		res, err := sim.Run(sim.Config{
			Graph: m, Algorithm: alg, Faults: f, Rate: 0.15, Length: 8, Seed: 43,
			FavorMarked:    favor,
			TrackLatencies: true,
			WarmupCycles:   600, MeasureCycles: measure,
		})
		if err != nil {
			return nil, err
		}
		name := "round-robin"
		if favor {
			name = "favour marked"
		}
		tb.AddRow(name,
			fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()),
			fmt.Sprintf("%.0f", res.LatencyP99),
			res.Stats.MarkedCount,
			fmt.Sprintf("%.3f", res.Stats.DeliveredRatio()))
	}
	return tb, nil
}
