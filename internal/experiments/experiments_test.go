package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	tb, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 11 {
		t.Fatalf("Table 1 rows = %d, want 11", tb.Rows())
	}
	s := tb.String()
	for _, want := range []string{"incoming_message", "1024 x 8", "nft"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2(t *testing.T) {
	tb, total, err := Table2(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 4 {
		t.Fatalf("Table 2 rows = %d, want 4", tb.Rows())
	}
	// Paper: 2960 bits total; same order of magnitude required.
	if total < 296 || total > 29600 {
		t.Fatalf("Table 2 total bits = %d, want within 10x of 2960", total)
	}
}

func TestE3(t *testing.T) {
	tb, err := E3Registers()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 7 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// ROUTE_C register bits must grow monotonically with d.
	var prev int
	for r := 1; r < tb.Rows(); r++ {
		bits, err := strconv.Atoi(tb.Cell(r, 2))
		if err != nil {
			t.Fatal(err)
		}
		if r > 1 && bits <= prev {
			t.Fatalf("register bits not growing: row %d", r)
		}
		prev = bits
	}
}

func TestE4(t *testing.T) {
	tb, err := E4Steps()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 4 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// Structural step counts are exact (paper Section 5).
	wantFF := map[string]string{"NARA": "1", "NAFTA": "1", "ROUTE_C": "2", "ROUTE_C-nft": "1"}
	wantWC := map[string]string{"NARA": "1", "NAFTA": "3", "ROUTE_C": "2", "ROUTE_C-nft": "1"}
	for r := 0; r < tb.Rows(); r++ {
		name := tb.Cell(r, 0)
		if tb.Cell(r, 1) != wantFF[name] || tb.Cell(r, 2) != wantWC[name] {
			t.Fatalf("%s steps: ff=%s wc=%s", name, tb.Cell(r, 1), tb.Cell(r, 2))
		}
	}
	// ROUTE_C's measured steps per hop must be near 2, the nft
	// variant near 1.
	for r := 0; r < tb.Rows(); r++ {
		v, err := strconv.ParseFloat(tb.Cell(r, 3), 64)
		if err != nil {
			t.Fatal(err)
		}
		switch tb.Cell(r, 0) {
		case "ROUTE_C":
			if v < 1.8 || v > 2.2 {
				t.Fatalf("ROUTE_C measured steps/hop = %v", v)
			}
		case "ROUTE_C-nft", "NARA":
			if v < 0.8 || v > 1.2 {
				t.Fatalf("%s measured steps/hop = %v", tb.Cell(r, 0), v)
			}
		}
	}
}

func TestE5(t *testing.T) {
	tb, err := E5Merged()
	if err != nil {
		t.Fatal(err)
	}
	// Merged entries grow exponentially; split stays near-flat.
	var splitFirst, splitLast, mergedFirst, mergedLast int
	splitFirst, _ = strconv.Atoi(tb.Cell(0, 1))
	splitLast, _ = strconv.Atoi(tb.Cell(tb.Rows()-1, 1))
	mergedFirst, _ = strconv.Atoi(tb.Cell(0, 3))
	mergedLast, _ = strconv.Atoi(tb.Cell(tb.Rows()-1, 3))
	if mergedLast < 32*mergedFirst {
		t.Fatalf("merged growth too small: %d -> %d", mergedFirst, mergedLast)
	}
	if splitLast > 8*splitFirst {
		t.Fatalf("split tables should stay near-flat: %d -> %d", splitFirst, splitLast)
	}
}

func TestE6(t *testing.T) {
	tb, err := E6FaultChain(12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() < 4 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// The list-of-faults knowledge grows linearly with |F| while the
	// per-node state stays constant.
	bits0, _ := strconv.Atoi(tb.Cell(0, 5))
	bitsN, _ := strconv.Atoi(tb.Cell(tb.Rows()-1, 5))
	state0, _ := strconv.Atoi(tb.Cell(0, 6))
	stateN, _ := strconv.Atoi(tb.Cell(tb.Rows()-1, 6))
	if bitsN <= bits0 {
		t.Fatal("fault-list bits should grow with |F|")
	}
	if state0 != stateN {
		t.Fatal("per-node state must stay constant")
	}
	// Delivery stays high: the chain is convex (no blocks), NAFTA
	// should route around it.
	for r := 0; r < tb.Rows(); r++ {
		reach, _ := strconv.Atoi(tb.Cell(r, 1))
		del, _ := strconv.Atoi(tb.Cell(r, 2))
		if float64(del) < 0.95*float64(reach) {
			t.Fatalf("row %d: delivered %d of %d", r, del, reach)
		}
	}
}

func TestE7Quick(t *testing.T) {
	meshTb, cubeTb, err := E7LatencyVsLoad(true)
	if err != nil {
		t.Fatal(err)
	}
	if meshTb.Rows() != 12 || cubeTb.Rows() != 6 {
		t.Fatalf("rows: %d %d", meshTb.Rows(), cubeTb.Rows())
	}
	// On the adversarial transpose pattern the adaptive algorithms
	// must sustain more throughput than dimension-order XY at the
	// higher load.
	var xy, nara float64
	for r := 0; r < meshTb.Rows(); r++ {
		if meshTb.Cell(r, 1) == "transpose" && meshTb.Cell(r, 2) == "0.250" {
			v, _ := strconv.ParseFloat(meshTb.Cell(r, 4), 64)
			switch meshTb.Cell(r, 0) {
			case "xy":
				xy = v
			case "nara":
				nara = v
			}
		}
	}
	if nara <= xy {
		t.Fatalf("adaptive should beat oblivious on transpose: nara=%v xy=%v", nara, xy)
	}
}

func TestE8Quick(t *testing.T) {
	meshTb, cubeTb, err := E8Degradation(true)
	if err != nil {
		t.Fatal(err)
	}
	if meshTb.Rows() != 6 || cubeTb.Rows() != 4 {
		t.Fatalf("rows: %d %d", meshTb.Rows(), cubeTb.Rows())
	}
	// At 4 faults the fault-tolerant algorithm must keep a far higher
	// delivery ratio than oblivious XY.
	ratios := map[string]float64{}
	for r := 0; r < meshTb.Rows(); r++ {
		if meshTb.Cell(r, 1) == "4" {
			v, _ := strconv.ParseFloat(meshTb.Cell(r, 2), 64)
			ratios[meshTb.Cell(r, 0)] = v
		}
	}
	if ratios["nafta"] < 0.99 {
		t.Fatalf("NAFTA delivery at 4 faults = %v", ratios["nafta"])
	}
	if ratios["xy"] >= ratios["nafta"] {
		t.Fatalf("XY should degrade below NAFTA: %v vs %v", ratios["xy"], ratios["nafta"])
	}
}

func TestE9Quick(t *testing.T) {
	tb, err := E9DecisionTime(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 8 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// Latency at low load rises with the decision time.
	var lat1, lat4 float64
	for r := 0; r < tb.Rows(); r++ {
		if tb.Cell(r, 1) == "0.050" {
			v, _ := strconv.ParseFloat(tb.Cell(r, 2), 64)
			if tb.Cell(r, 0) == "1" {
				lat1 = v
			}
			if tb.Cell(r, 0) == "4" {
				lat4 = v
			}
		}
	}
	if lat4 <= lat1 {
		t.Fatalf("latency should rise with decision time: %v vs %v", lat1, lat4)
	}
}

func TestE10Quick(t *testing.T) {
	tabs, err := E10Ablations(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("tables = %d", len(tabs))
	}
	// Each structuring level must shrink (or at least not grow) the
	// decision tables: subbases+fields <= monolithic-with-fields <=
	// monolithic-features-only; the end-to-end win must be large.
	idxTb := tabs[2]
	for r := 0; r < idxTb.Rows(); r++ {
		sub, _ := strconv.Atoi(idxTb.Cell(r, 1))
		monoF, _ := strconv.Atoi(idxTb.Cell(r, 2))
		flat, _ := strconv.Atoi(idxTb.Cell(r, 3))
		if sub > monoF || monoF > flat {
			t.Fatalf("%s: structuring should monotonically shrink tables (%d, %d, %d)",
				idxTb.Cell(r, 0), sub, monoF, flat)
		}
		if flat < 8*sub {
			t.Fatalf("%s: end-to-end structuring win too small (%d vs %d)",
				idxTb.Cell(r, 0), sub, flat)
		}
	}
}

func TestE11Quick(t *testing.T) {
	tb, err := E11NegHop(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 5 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// Delivery grows with the VC budget, and NAFTA (last row) beats
	// every negative-hop configuration with only 2 VCs.
	var prev float64
	for r := 0; r < 4; r++ {
		v, _ := strconv.ParseFloat(tb.Cell(r, 3), 64)
		if r > 0 && v < prev-0.02 {
			t.Fatalf("delivery should not shrink with more VCs: row %d", r)
		}
		prev = v
	}
	nafta, _ := strconv.ParseFloat(tb.Cell(4, 3), 64)
	best, _ := strconv.ParseFloat(tb.Cell(3, 3), 64)
	if nafta < best {
		t.Fatalf("NAFTA (%v) should match or beat the best neghop (%v)", nafta, best)
	}
}

func TestE12Quick(t *testing.T) {
	tb, err := E12Reconfiguration(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// All algorithms keep delivering after the fault; NAFTA must not
	// deliver less than the table-based reconfigurers.
	naftaDel, _ := strconv.ParseFloat(tb.Cell(2, 4), 64)
	if naftaDel < 0.99 {
		t.Fatalf("NAFTA post-fault delivery %v", naftaDel)
	}
	// And its post-fault latency stays below the tree's.
	treeLat, _ := strconv.ParseFloat(tb.Cell(0, 3), 64)
	naftaLat, _ := strconv.ParseFloat(tb.Cell(2, 3), 64)
	if naftaLat >= treeLat {
		t.Fatalf("NAFTA after-fault latency %v should be below tree %v", naftaLat, treeLat)
	}
}

func TestE13Quick(t *testing.T) {
	tb, err := E13MarkedPriority(true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	for r := 0; r < 2; r++ {
		del, _ := strconv.ParseFloat(tb.Cell(r, 4), 64)
		if del < 0.98 {
			t.Fatalf("row %d delivery %v", r, del)
		}
	}
}
