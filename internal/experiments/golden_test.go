package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run %s -update` to create it)", err, t.Name())
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			t.Name(), path, got, want)
	}
}

// cmd/tables' paper tables ride the same per-base cost accessors as
// cmd/rulec's report; the goldens pin the rendered output of both
// commands so the human-readable dumps cannot drift from each other
// or from the serialized artifact's table dimensions.
func TestTable1Golden(t *testing.T) {
	tb, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1", []byte(tb.String()))
}

func TestTable2Golden(t *testing.T) {
	tb, total, err := Table2(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := fmt.Sprintf("%s\ntotal rule-table bits: %d\n", tb.String(), total)
	checkGolden(t, "table2_d6a2", []byte(out))
}
