package rulesets

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

// mazeTestGraphs returns the three topology families of the maze
// campaign with a representative fault pattern each (partitions
// allowed — the family's point).
func mazeTestGraphs(t *testing.T) []struct {
	g topology.Graph
	f *fault.Set
} {
	t.Helper()
	mesh := topology.NewMesh(8, 8)
	mf := fault.NewSet()
	for y := 2; y <= 5; y++ {
		mf.FailNode(mesh.Node(5, y))
	}
	mf.FailNode(mesh.Node(4, 2))
	mf.FailNode(mesh.Node(4, 5))

	tor := topology.NewTorus(6, 5)
	tf := fault.NewSet()
	for y := 0; y < 5; y++ {
		tf.FailLink(tor.Node(2, y), tor.Node(3, y))
	}

	irr, err := topology.RandomIrregular(20, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if irr.Ports() > routing.MazeMaxPorts {
		t.Fatalf("test irregular graph drew degree %d > %d; pick another seed", irr.Ports(), routing.MazeMaxPorts)
	}
	rf, err := fault.Random(irr, fault.RandomOptions{Nodes: 2, Links: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		g topology.Graph
		f *fault.Set
	}{{mesh, mf}, {tor, tf}, {irr, rf}}
}

// Every decision of a full walk must agree across the native engine,
// the dense fast path and the interpreted reference path — and
// reachable pairs must be delivered, unreachable ones unanimously
// certified.
func TestRuleMazeMatchesNativeWalks(t *testing.T) {
	for _, tc := range mazeTestGraphs(t) {
		g := tc.g
		native, err := routing.NewMaze(g)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewRuleMaze(g)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.FastPathActive() {
			t.Fatalf("%s: maze decision bases must compile densely", g.Name())
		}
		interp, err := NewRuleMaze(g)
		if err != nil {
			t.Fatal(err)
		}
		interp.DisableFast = true
		native.UpdateFaults(tc.f)
		fast.UpdateFaults(tc.f)
		interp.UpdateFaults(tc.f)
		filter := tc.f.Filter()

		rng := rand.New(rand.NewSource(42))
		maxHops := 20*g.Nodes() + 200
		walked := 0
		for i := 0; i < 150; i++ {
			src := topology.NodeID(rng.Intn(g.Nodes()))
			dst := topology.NodeID(rng.Intn(g.Nodes()))
			if src == dst || tc.f.NodeFaulty(src) || tc.f.NodeFaulty(dst) {
				continue
			}
			walked++
			reach := topology.Reachable(g, src, dst, filter)
			hdr := &routing.Header{Src: src, Dst: dst, Length: 4}
			req := routing.Request{Node: src, InPort: routing.InjectionPort, Hdr: hdr}
			hops, delivered := 0, false
			for {
				if req.Node == dst {
					delivered = true
					break
				}
				a := fast.Route(req)
				b := interp.Route(req)
				c := native.Route(req)
				if !sameCands(a, b) || !sameCands(a, c) {
					t.Fatalf("%s %d->%d at %d: fast %v interp %v native %v", g.Name(), src, dst, req.Node, a, b, c)
				}
				if len(a) == 0 {
					if !fast.UnreachableVerdict(req) || !native.UnreachableVerdict(req) {
						t.Fatalf("%s %d->%d: drop without unanimous verdict", g.Name(), src, dst)
					}
					break
				}
				chosen := a[0]
				fast.NoteHop(req, chosen)
				next := g.Neighbor(req.Node, chosen.Port)
				if next == topology.Invalid || !tc.f.HopUsable(req.Node, next) {
					t.Fatalf("%s %d->%d: illegal hop %v at %d", g.Name(), src, dst, chosen, req.Node)
				}
				back, _ := g.PortTo(next, req.Node)
				req = routing.Request{Node: next, InPort: back, InVC: chosen.VC, Hdr: hdr}
				hops++
				if hops > maxHops {
					t.Fatalf("%s %d->%d: no termination", g.Name(), src, dst)
				}
			}
			if reach && !delivered {
				t.Fatalf("%s: sacrificed reachable pair %d->%d", g.Name(), src, dst)
			}
			if !reach && delivered {
				t.Fatalf("%s: delivered unreachable pair %d->%d", g.Name(), src, dst)
			}
		}
		if walked == 0 {
			t.Fatalf("%s: no pairs walked", g.Name())
		}
	}
}

func TestRuleMazeSurface(t *testing.T) {
	g := topology.NewTorus(5, 4)
	r, err := NewRuleMaze(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumVCs() != 2 {
		t.Fatalf("NumVCs = %d, want 2", r.NumVCs())
	}
	hdr := &routing.Header{Src: 0, Dst: 7, Length: 4}
	req := routing.Request{Node: 0, InPort: routing.InjectionPort, Hdr: hdr}
	if r.Steps(req) != 2 {
		t.Fatalf("Steps = %d, want 2 (move + escape base)", r.Steps(req))
	}
	if got := routing.RegimeOf(r); got != routing.RegimeMaze {
		t.Fatalf("regime = %q, want %q", got, routing.RegimeMaze)
	}
}

func TestRuleMazeRouteAppendZeroAlloc(t *testing.T) {
	g := topology.NewMesh(8, 8)
	r, err := NewRuleMaze(g)
	if err != nil {
		t.Fatal(err)
	}
	f := fault.NewSet()
	f.FailNode(g.Node(4, 4))
	r.UpdateFaults(f)
	if !r.FastPathActive() {
		t.Fatal("fast path must be active")
	}
	hdr := &routing.Header{Src: g.Node(0, 0), Dst: g.Node(7, 7), Length: 4}
	req := routing.Request{Node: g.Node(3, 3), InPort: topology.West, Hdr: hdr}
	buf := make([]routing.Candidate, 0, 8)
	allocs := testing.AllocsPerRun(200, func() {
		buf = r.RouteAppend(req, buf[:0])
		if len(buf) == 0 {
			t.Fatal("expected candidates")
		}
	})
	if allocs != 0 {
		t.Fatalf("RouteAppend allocates %.1f/op, want 0", allocs)
	}
	// The decision context lane must be allocation free too.
	ctx := r.NewDecisionContext(nil).(*mazeContext)
	allocs = testing.AllocsPerRun(200, func() {
		buf = ctx.RouteAppend(req, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("context RouteAppend allocates %.1f/op, want 0", allocs)
	}
}

// The rule firings of the maze bases must replay identically through a
// decision context's deferred observer (the parallel stepper's
// determinism contract).
func TestRuleMazeContextObserver(t *testing.T) {
	g := topology.NewMesh(6, 6)
	r, err := NewRuleMaze(g)
	if err != nil {
		t.Fatal(err)
	}
	var direct []firing
	r.OnRuleFired = recordFirings(&direct)
	var deferred []firing
	ctx := r.NewDecisionContext(func(eng routing.Algorithm, node topology.NodeID, base string, rule int) {
		deferred = append(deferred, firing{node: node, base: base, rule: rule})
	})
	hdr := &routing.Header{Src: g.Node(0, 0), Dst: g.Node(5, 5), Length: 4}
	req := routing.Request{Node: g.Node(2, 2), InPort: topology.West, Hdr: hdr}
	a := r.Route(req)
	hdr2 := *hdr
	req2 := req
	req2.Hdr = &hdr2
	b := ctx.Route(req2)
	if !sameCands(a, b) {
		t.Fatalf("context decisions diverge: %v vs %v", a, b)
	}
	if !sameFirings(direct, deferred) {
		t.Fatalf("firings diverge: %v vs %v", direct, deferred)
	}
}
