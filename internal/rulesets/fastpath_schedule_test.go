package rulesets

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Differential check under mid-run fault injection: a full simulation
// driven by the dense fast path must be statistically bit-identical to
// the interpreted reference path even while a fault schedule mutates
// the rule inputs mid-run (fault-free base -> in_message_ft switch,
// block recomputation, safety downgrades). The static-fault variant
// lives in the fastpath fuzz tests; this one exercises the transitions
// themselves.
func TestFastPathMatchesInterpreterUnderFaultSchedule(t *testing.T) {
	t.Run("nafta", func(t *testing.T) {
		m := topology.NewMesh(8, 8)
		sched := fault.NewSchedule(nil)
		sched.AddNodeFault(500, m.Node(3, 4))
		sched.AddLinkFault(700, m.Node(5, 2), m.Node(6, 2))
		sched.AddNodeFault(1100, m.Node(6, 6))
		runWith := func(disableFast bool) (sim.Result, int64) {
			alg, err := NewRuleNAFTA(m)
			if err != nil {
				t.Fatal(err)
			}
			alg.DisableFast = disableFast
			res, err := sim.Run(sim.Config{
				Graph:         m,
				Algorithm:     alg,
				Rate:          0.08,
				Length:        6,
				Seed:          31,
				FaultSchedule: sched,
				WarmupCycles:  300,
				MeasureCycles: 1500,
				OnNetwork:     func(n *network.Network) { alg.AttachLoads(n) },
			})
			if err != nil {
				t.Fatal(err)
			}
			return res, alg.Lookups
		}
		fast, fastLookups := runWith(false)
		interp, interpLookups := runWith(true)
		if fast.Stats != interp.Stats {
			t.Fatalf("stats diverge under fault schedule:\n fast   %+v\n interp %+v", fast.Stats, interp.Stats)
		}
		if fastLookups != interpLookups {
			t.Fatalf("lookup counts diverge: fast %d interp %d", fastLookups, interpLookups)
		}
		if fast.Stats.Killed == 0 {
			t.Fatal("schedule should kill some crossing worms (otherwise the transition is untested)")
		}
		if !fast.Drained || fast.Stats.DeadlockSuspected {
			t.Fatalf("unhealthy run: drained=%v deadlock=%v", fast.Drained, fast.Stats.DeadlockSuspected)
		}
	})
	t.Run("routec", func(t *testing.T) {
		h := topology.NewHypercube(5)
		sched := fault.NewSchedule(nil)
		sched.AddNodeFault(400, 7)
		sched.AddNodeFault(900, 21)
		runWith := func(disableFast bool) (sim.Result, int64) {
			alg, err := NewRuleRouteC(h)
			if err != nil {
				t.Fatal(err)
			}
			alg.DisableFast = disableFast
			res, err := sim.Run(sim.Config{
				Graph:         h,
				Algorithm:     alg,
				Rate:          0.12,
				Length:        8,
				Seed:          32,
				FaultSchedule: sched,
				WarmupCycles:  300,
				MeasureCycles: 1500,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res, alg.Lookups
		}
		fast, fastLookups := runWith(false)
		interp, interpLookups := runWith(true)
		if fast.Stats != interp.Stats {
			t.Fatalf("stats diverge under fault schedule:\n fast   %+v\n interp %+v", fast.Stats, interp.Stats)
		}
		if fastLookups != interpLookups {
			t.Fatalf("lookup counts diverge: fast %d interp %d", fastLookups, interpLookups)
		}
		if fast.Stats.Killed == 0 {
			t.Fatal("schedule should kill some crossing worms")
		}
		if !fast.Drained || fast.Stats.DeadlockSuspected {
			t.Fatalf("unhealthy run: drained=%v deadlock=%v", fast.Drained, fast.Stats.DeadlockSuspected)
		}
	})
}
