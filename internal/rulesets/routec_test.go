package rulesets

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/rules"
	"repro/internal/topology"
)

// cubeInputs derives the decide_dir/decide_vc rule inputs from a
// native ROUTE_C decision state.
func cubeInputs(c *rules.Checked, h *topology.Hypercube, alg *routing.RouteC,
	f *fault.Set, req routing.Request) map[string]rules.Value {
	vals := map[string]rules.Value{
		"phase": {T: rules.IntType(0, 1), I: int64(req.Hdr.Phase)},
		"level": {T: rules.IntType(0, 3), I: int64(req.Hdr.DetourLevel)},
	}
	states := alg.States()
	for i := 0; i < h.Dim; i++ {
		nb := h.Neighbor(req.Node, i)
		diff := req.Node&(1<<i) != req.Hdr.Dst&(1<<i)
		up := req.Node&(1<<i) == 0
		ok := f.PortUsable(h, req.Node, i)
		safe := nb == req.Hdr.Dst || states[nb] == routing.StateSafe
		vals[fmt.Sprintf("diffb/%d", i)] = bitVal(diff)
		vals[fmt.Sprintf("upb/%d", i)] = bitVal(up)
		vals[fmt.Sprintf("okl/%d", i)] = bitVal(ok)
		vals[fmt.Sprintf("nbsafe/%d", i)] = bitVal(safe)
		vals[fmt.Sprintf("notback/%d", i)] = bitVal(i != req.InPort)
	}
	return vals
}

func mapProvider(vals map[string]rules.Value) core.InputProvider {
	return func(name string, idx []int64) (rules.Value, error) {
		k := name
		for _, i := range idx {
			k += fmt.Sprintf("/%d", i)
		}
		v, ok := vals[k]
		if !ok {
			return rules.Value{}, fmt.Errorf("unset input %s", k)
		}
		return v, nil
	}
}

// nativeMode classifies a native decideDir outcome (reconstructed from
// Route's candidates) into the rule program's mode vocabulary.
func nativeMode(h *topology.Hypercube, alg *routing.RouteC, req routing.Request,
	cands []routing.Candidate) string {
	if len(cands) == 0 {
		return "blocked"
	}
	states := alg.States()
	minimal := h.MinimalPorts(req.Node, req.Hdr.Dst)
	isMin := func(p int) bool {
		for _, q := range minimal {
			if q == p {
				return true
			}
		}
		return false
	}
	allSafe := true
	anyUp := false
	detour := false
	for _, cd := range cands {
		nb := h.Neighbor(req.Node, cd.Port)
		if nb != req.Hdr.Dst && states[nb] != routing.StateSafe {
			allSafe = false
		}
		if !isMin(cd.Port) {
			detour = true
		}
		if req.Node&(1<<cd.Port) == 0 {
			anyUp = true
		}
	}
	bump := anyUp && req.Hdr.Phase == 1 && !detour
	switch {
	case detour && allSafe:
		return "detour_safe"
	case detour:
		return "detour_any"
	case bump && allSafe:
		return "bump_safe"
	case bump:
		return "bump_any"
	case anyUp && allSafe:
		return "up_safe"
	case anyUp:
		return "up_any"
	case allSafe:
		return "down_safe"
	default:
		return "down_any"
	}
}

func TestDecideDirMatchesRouteC(t *testing.T) {
	d := 5
	p, err := LoadRouteC(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := topology.NewHypercube(d)
	modes := p.Checked.SymbolSets["modes"]
	rng := rand.New(rand.NewSource(17))
	for scenario := 0; scenario < 10; scenario++ {
		f, err := fault.Random(h, fault.RandomOptions{Nodes: 3, Links: 1, Seed: int64(scenario), KeepConnected: true})
		if err != nil {
			t.Fatal(err)
		}
		alg := routing.NewRouteC(h)
		alg.UpdateFaults(f)
		for trial := 0; trial < 500; trial++ {
			src := topology.NodeID(rng.Intn(h.Nodes()))
			dst := topology.NodeID(rng.Intn(h.Nodes()))
			if src == dst || f.NodeFaulty(src) || f.NodeFaulty(dst) {
				continue
			}
			hdr := &routing.Header{Src: src, Dst: dst, Length: 6,
				Phase: rng.Intn(2), DetourLevel: rng.Intn(4)}
			inPort := routing.InjectionPort
			if rng.Intn(3) > 0 {
				inPort = rng.Intn(d)
			}
			req := routing.Request{Node: src, InPort: inPort, Hdr: hdr}
			cands := alg.Route(req)
			want := nativeMode(h, alg, req, cands)

			vals := cubeInputs(p.Checked, h, alg, f, req)
			vals["taking_detour"] = bitVal(false)
			for i := 0; i < d; i++ {
				vals[fmt.Sprintf("new_state/%d", i)] = p.Checked.Symbols["safe"]
				vals[fmt.Sprintf("adapt_load/%d", i)] = rules.Value{T: rules.IntType(0, 3)}
			}
			mach := core.NewMachine(p.Checked, mapProvider(vals))
			_, ret, err := mach.InvokeNow("decide_dir")
			if err != nil {
				t.Fatal(err)
			}
			if ret == nil {
				t.Fatalf("decide_dir returned nothing")
			}
			got := modes.Symbols[ret.I]
			if got != want {
				t.Fatalf("scenario %d trial %d (%05b->%05b phase=%d lvl=%d in=%d): rules %s, native %s (cands %v)",
					scenario, trial, src, dst, hdr.Phase, hdr.DetourLevel, inPort, got, want, cands)
			}
		}
	}
}

func TestDecideVCMatchesRouteC(t *testing.T) {
	d := 4
	p, err := LoadRouteC(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := topology.NewHypercube(d)
	alg := routing.NewRouteC(h)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 800; trial++ {
		src := topology.NodeID(rng.Intn(h.Nodes()))
		dst := topology.NodeID(rng.Intn(h.Nodes()))
		if src == dst {
			continue
		}
		hdr := &routing.Header{Src: src, Dst: dst, Length: 6,
			Phase: rng.Intn(2), DetourLevel: rng.Intn(4)}
		req := routing.Request{Node: src, InPort: routing.InjectionPort, Hdr: hdr}
		cands := alg.Route(req)
		if len(cands) == 0 {
			continue
		}
		minimal := h.MinimalPorts(src, dst)
		for _, cd := range cands {
			isMin := false
			for _, q := range minimal {
				if q == cd.Port {
					isMin = true
				}
			}
			// The phase class of the chosen output; a minimal
			// ascending hop taken while descending is a level bump
			// and claims the next level's channel like a detour.
			up := src&(1<<cd.Port) == 0
			bump := isMin && up && hdr.Phase == 1
			outPhase := int64(1)
			if up && isMin {
				outPhase = 0
			}
			vals := map[string]rules.Value{
				"phase":         {T: rules.IntType(0, 1), I: outPhase},
				"level":         {T: rules.IntType(0, 3), I: int64(hdr.DetourLevel)},
				"taking_detour": bitVal(!isMin || bump),
			}
			mach := core.NewMachine(p.Checked, mapProvider(vals))
			_, ret, err := mach.InvokeNow("decide_vc", p.Checked.Symbols["up_any"])
			if err != nil {
				t.Fatal(err)
			}
			if ret == nil || ret.I != int64(cd.VC) {
				t.Fatalf("trial %d cand %v (min=%v lvl=%d): rules VC %v, native %d",
					trial, cd, isMin, hdr.DetourLevel, ret, cd.VC)
			}
		}
	}
}

// TestUpdateStatePropagationMatchesNative runs the event-driven,
// per-node rule machines of update_state until quiescence and checks
// the distributed fixpoint against the native global computation —
// DESIGN.md's "incremental propagation converges to the same fixpoint"
// requirement.
func TestUpdateStatePropagationMatchesNative(t *testing.T) {
	d := 4
	h := topology.NewHypercube(d)
	for seed := int64(0); seed < 10; seed++ {
		f, err := fault.Random(h, fault.RandomOptions{Nodes: 2, Links: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		native := routing.NewRouteC(h)
		native.UpdateFaults(f)

		p, err := LoadRouteC(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		// One machine and one pending-input store per healthy node.
		machines := make([]*core.Machine, h.Nodes())
		pending := make([]map[string]rules.Value, h.Nodes())
		for n := 0; n < h.Nodes(); n++ {
			if f.NodeFaulty(topology.NodeID(n)) {
				continue
			}
			pending[n] = map[string]rules.Value{}
			machines[n] = core.NewMachine(p.Checked, mapProvider(pending[n]))
		}
		type msg struct {
			node  topology.NodeID
			dir   int
			state rules.Value
		}
		var queue []msg
		// Seed the diagnosis wave: direct observations of failed
		// neighbours and links.
		for n := 0; n < h.Nodes(); n++ {
			if machines[n] == nil {
				continue
			}
			for i := 0; i < d; i++ {
				nb := h.Neighbor(topology.NodeID(n), i)
				if f.NodeFaulty(nb) {
					queue = append(queue, msg{topology.NodeID(n), i, p.Checked.Symbols["faulty"]})
				} else if f.LinkFaulty(topology.NodeID(n), nb) {
					queue = append(queue, msg{topology.NodeID(n), i, p.Checked.Symbols["lfault"]})
				}
			}
		}
		steps := 0
		for len(queue) > 0 {
			if steps++; steps > 10000 {
				t.Fatal("propagation did not settle")
			}
			mg := queue[0]
			queue = queue[1:]
			m := machines[mg.node]
			pending[mg.node][fmt.Sprintf("new_state/%d", mg.dir)] = mg.state
			if _, _, err := m.InvokeNow("update_state", rules.IntVal(int64(mg.dir))); err != nil {
				t.Fatal(err)
			}
			for _, ev := range m.TakeExternal() {
				if ev.Name != "send_newmessage" {
					continue
				}
				dim := int(ev.Args[0].I)
				nb := h.Neighbor(mg.node, dim)
				// State messages travel only over intact links to
				// live neighbours.
				if machines[nb] == nil || f.LinkFaulty(mg.node, nb) {
					continue
				}
				queue = append(queue, msg{nb, dim, ev.Args[1]})
			}
		}
		// Compare the distributed fixpoint with the native one.
		for n := 0; n < h.Nodes(); n++ {
			if machines[n] == nil {
				continue
			}
			v, err := machines[n].Get("state")
			if err != nil {
				t.Fatal(err)
			}
			var want string
			switch native.States()[n] {
			case routing.StateSafe:
				want = "safe"
			case routing.StateOUnsafe:
				want = "ounsafe"
			case routing.StateSUnsafe:
				want = "sunsafe"
			default:
				want = "faulty"
			}
			got := v.T.Symbols[v.I]
			if got != want {
				t.Fatalf("seed %d node %04b: distributed state %s, native %s (%s)",
					seed, n, got, want, f)
			}
		}
	}
}
