package rulesets

import (
	"fmt"
	"strings"
)

// The Maze-routing rule program. Unlike NAFTA (fixed 2-D mesh
// directions) the maze family runs on meshes, tori and irregular
// graphs, so the program is generated for the bound graph's port count.
// All geometric work — productive-port computation, the right-hand
// wall-follow rule, the traversal loop/budget heuristic and the
// up*/down* escape legality — happens in the native engine's
// information units (routing.Maze.Facts); the rule bases see the
// paper-style pre-digested signals and make the actual decision:
//
//	mode    per-message state machine: 0 normal, 1 traversal, 2 escape
//	done    traversal declared disconnection (loop heuristic or budget)
//	exitok  traversal may exit to normal mode (strictly closer + productive)
//	wall    the wall-follow port of this decision (dirs = no usable port)
//	prod    per-port: usable and strictly productive toward the destination
//	escok   per-port: legal up*/down* escape hop under the current phase
//
// maze_move picks the VC0 maze move; maze_escape picks the VC1 escape
// hop offered alongside every move (Duato). Every rule returns a
// constant port, so both bases fold completely into dense tables.
func mazeDecls(ports int) string {
	return fmt.Sprintf(`
-- Maze-routing for arbitrary graphs of %d ports: declarations
CONSTANT dirs = %d

-- message interface (header state machine, pre-digested)
INPUT mode IN 0 TO 2
INPUT done IN 0 TO 1
INPUT exitok IN 0 TO 1
INPUT wall IN 0 TO %d

-- information units (per-port geometry and escape knowledge)
INPUT prod (dirs) IN 0 TO 1
INPUT escok (dirs) IN 0 TO 1
`, ports, ports, ports)
}

// mazeBases enumerates the decision rules per port, in strict priority
// order; the native engine mirrors this order exactly (see
// routing.Maze), which the differential and fuzz tests lean on.
func mazeBases(ports int) string {
	var b strings.Builder
	b.WriteString(`
-- The VC0 maze move: normal-mode productive moves first, then the
-- traversal entry (the wall port when nothing is productive), then the
-- traversal exit back to normal mode, then the wall-follow
-- continuation. A declared disconnection (done = 1) and escape mode
-- offer no move at all.
ON maze_move(invc IN 0 TO 1)
`)
	for p := 0; p < ports; p++ {
		fmt.Fprintf(&b, "  IF mode = 0 AND prod(%d) = 1 THEN RETURN(%d);\n", p, p)
	}
	for p := 0; p < ports; p++ {
		fmt.Fprintf(&b, "  IF mode = 0 AND wall = %d THEN RETURN(%d);\n", p, p)
	}
	for p := 0; p < ports; p++ {
		fmt.Fprintf(&b, "  IF mode = 1 AND done = 0 AND exitok = 1 AND prod(%d) = 1 THEN RETURN(%d);\n", p, p)
	}
	for p := 0; p < ports; p++ {
		fmt.Fprintf(&b, "  IF mode = 1 AND done = 0 AND wall = %d THEN RETURN(%d);\n", p, p)
	}
	b.WriteString("END maze_move;\n")
	b.WriteString(`
-- The VC1 escape hop, offered alongside every move: the first legal
-- up*/down* continuation in port order.
ON maze_escape(invc IN 0 TO 1)
`)
	for p := 0; p < ports; p++ {
		fmt.Fprintf(&b, "  IF escok(%d) = 1 THEN RETURN(%d);\n", p, p)
	}
	b.WriteString("END maze_escape;\n")
	return b.String()
}

// MazeSource is the complete Maze-routing rule program for a graph
// with the given port count.
func MazeSource(ports int) string { return mazeDecls(ports) + mazeBases(ports) }

// MazeMeta describes the maze rule bases in the Table-1 style.
var MazeMeta = []BaseMeta{
	{Name: "maze_move", Meaning: "maze move: productive, traversal entry/exit or wall-follow"},
	{Name: "maze_escape", Meaning: "up*/down* escape hop offered with every move"},
}

// MazeDecisionBases lists the rule bases the maze adapter consults per
// routing decision — the bases a reconfiguration artifact must carry
// tables for.
var MazeDecisionBases = []string{"maze_move", "maze_escape"}

// LoadMaze parses and analyses the maze program for a port count.
func LoadMaze(ports int) (*Program, error) {
	return Load("MAZE", MazeSource(ports), MazeMeta)
}
