// Package rulesets contains the rule-language implementations of the
// paper's case-study algorithms — NAFTA (with its non-fault-tolerant
// core NARA) for 2-D meshes and ROUTE_C (with its stripped variant)
// for hypercubes — together with the per-rule-base metadata needed to
// regenerate the paper's Tables 1 and 2 (meaning column, nft marker)
// and helper constructors that analyse and compile the programs.
//
// The decision rule bases are verified against the native Go
// implementations in internal/routing by differential tests: for
// randomly sampled router states both must select the same output.
package rulesets

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rules"
)

// BaseMeta annotates one rule base for the cost tables.
type BaseMeta struct {
	// Name of the rule base (its event).
	Name string
	// Meaning is the paper's description column.
	Meaning string
	// NFT marks rule bases that the non-fault-tolerant variant of the
	// algorithm needs too (the paper's "nft" column asterisk).
	NFT bool
}

// Program bundles an analysed rule program with its table metadata.
type Program struct {
	Name    string
	Source  string
	Checked *rules.Checked
	Meta    []BaseMeta
}

// Load parses and analyses src.
func Load(name, src string, meta []BaseMeta) (*Program, error) {
	prog, err := rules.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("rulesets: %s: %w", name, err)
	}
	c, err := rules.Analyze(prog)
	if err != nil {
		return nil, fmt.Errorf("rulesets: %s: %w", name, err)
	}
	// Every rule base must have metadata and vice versa.
	byName := map[string]bool{}
	for _, m := range meta {
		byName[m.Name] = true
		if c.Bases[m.Name] == nil {
			return nil, fmt.Errorf("rulesets: %s: metadata for missing base %s", name, m.Name)
		}
	}
	for _, rb := range prog.RuleBases {
		if !byName[rb.Event] {
			return nil, fmt.Errorf("rulesets: %s: base %s has no metadata", name, rb.Event)
		}
	}
	return &Program{Name: name, Source: src, Checked: c, Meta: meta}, nil
}

// CostTable compiles every rule base and renders the paper's table
// format: Name, Size (entries x width), FCFBs, Meaning, nft.
func (p *Program) CostTable(opts core.CompileOptions) (*metrics.Table, *core.ProgramCost, error) {
	pc, err := core.AnalyzeCost(p.Checked, opts)
	if err != nil {
		return nil, nil, err
	}
	byName := map[string]*core.BaseCost{}
	for i := range pc.Bases {
		byName[pc.Bases[i].Name] = &pc.Bases[i]
	}
	tb := metrics.NewTable(fmt.Sprintf("Rule bases of %s", p.Name),
		"name", "size (bits)", "FCFBs", "meaning", "nft")
	for _, m := range p.Meta {
		bc := byName[m.Name]
		nft := ""
		if m.NFT {
			nft = "*"
		}
		tb.AddRow(m.Name, bc.Dim(), bc.FCFBString(), m.Meaning, nft)
	}
	return tb, pc, nil
}

// FTOnlyRegisterBits splits the program's register bits into the part
// needed by the non-fault-tolerant variant (the registers read or
// written only by nft-marked rule bases) and the fault-tolerance
// overhead. A variable touched by any fault-tolerant-only base counts
// as FT overhead unless an nft base also needs it.
func (p *Program) FTOnlyRegisterBits() (total, ftOnly int64, err error) {
	nftBases := map[string]bool{}
	for _, m := range p.Meta {
		if m.NFT {
			nftBases[m.Name] = true
		}
	}
	usedByNFT := map[string]bool{}
	for _, rb := range p.Checked.Prog.RuleBases {
		if !nftBases[rb.Event] {
			continue
		}
		for _, v := range varsUsedByBase(rb) {
			usedByNFT[v] = true
		}
	}
	for name, info := range p.Checked.Signals {
		if info.IsInput {
			continue
		}
		total += info.Bits()
		if !usedByNFT[name] {
			ftOnly += info.Bits()
		}
	}
	return total, ftOnly, nil
}

// varsUsedByBase lists variable names read or written by a rule base.
func varsUsedByBase(rb *rules.RuleBase) []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walkExpr func(e rules.Expr)
	walkExpr = func(e rules.Expr) {
		switch n := e.(type) {
		case *rules.Ident:
			add(n.Name)
		case *rules.Call:
			add(n.Name)
			for _, a := range n.Args {
				walkExpr(a)
			}
		case *rules.Unary:
			walkExpr(n.X)
		case *rules.Binary:
			walkExpr(n.X)
			walkExpr(n.Y)
		case *rules.SetLit:
			for _, el := range n.Elems {
				walkExpr(el)
			}
		case *rules.Quant:
			walkExpr(n.Body)
		}
	}
	var walkCmd func(c rules.Cmd)
	walkCmd = func(c rules.Cmd) {
		switch n := c.(type) {
		case *rules.Assign:
			add(n.Name)
			for _, ix := range n.Idx {
				walkExpr(ix)
			}
			walkExpr(n.Rhs)
		case *rules.Return:
			walkExpr(n.Val)
		case *rules.Emit:
			for _, a := range n.Args {
				walkExpr(a)
			}
		case *rules.ForAllCmd:
			walkCmd(n.Body)
		}
	}
	for _, r := range rb.Rules {
		walkExpr(r.Premise)
		for _, cmd := range r.Cmds {
			walkCmd(cmd)
		}
	}
	return out
}
