package rulesets

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run %s -update` to create it)", err, t.Name())
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			t.Name(), path, got, want)
	}
}

// The cost reports of cmd/rulec go through core.WriteCostReport, the
// single table-emission path; these goldens pin the exact output so
// neither the report format nor the compiled table dimensions (which
// the artifact serialization also embeds) can drift silently.
func TestCostReportGoldenNAFTA(t *testing.T) {
	p, err := LoadNAFTA()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := core.AnalyzeCost(p.Checked, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	core.WriteCostReport(&b, "Rule bases of NAFTA", pc)
	checkGolden(t, "report_nafta", b.Bytes())
}

func TestCostReportGoldenRouteC(t *testing.T) {
	p, err := LoadRouteC(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := core.AnalyzeCost(p.Checked, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	core.WriteCostReport(&b, "Rule bases of ROUTE_C (d=6, a=2)", pc)
	checkGolden(t, "report_routec_d6a2", b.Bytes())
}
