package rulesets

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

// The fuzz targets below mutate a fault set plus one routing request
// from raw bytes and assert that the dense fast path and the
// interpreted reference path select the identical fired rules and
// produce the identical candidates. Under plain `go test` only the
// seed corpus runs; `go test -fuzz FuzzRuleNAFTA ./internal/rulesets`
// explores further.

// fuzzBytes is a zero-padded byte reader so short inputs still decode.
type fuzzBytes struct {
	data []byte
	pos  int
}

func (f *fuzzBytes) next() byte {
	if f.pos >= len(f.data) {
		return 0
	}
	b := f.data[f.pos]
	f.pos++
	return b
}

func (f *fuzzBytes) intn(n int) int { return int(f.next()) % n }

func FuzzRuleNAFTADifferential(f *testing.F) {
	m := topology.NewMesh(8, 8)
	fast, err := NewRuleNAFTA(m)
	if err != nil {
		f.Fatal(err)
	}
	interp, err := NewRuleNAFTA(m)
	if err != nil {
		f.Fatal(err)
	}
	interp.DisableFast = true
	var fastFired, interpFired []firing
	fast.OnRuleFired = recordFirings(&fastFired)
	interp.OnRuleFired = recordFirings(&interpFired)

	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 7, 7, 0, 1, 0, 0, 0})
	f.Add([]byte{2, 27, 36, 0, 0, 5, 63, 2, 12, 1, 1, 200})
	f.Add([]byte{3, 9, 10, 11, 1, 2, 3, 60, 17, 4, 30, 1, 0, 99})
	f.Add([]byte{1, 20, 2, 1, 12, 52, 1, 5, 0, 1, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		fb := &fuzzBytes{data: data}
		fs := fault.NewSet()
		for i, n := 0, fb.intn(4); i < n; i++ {
			fs.FailNode(topology.NodeID(fb.intn(m.Nodes())))
		}
		for i, n := 0, fb.intn(3); i < n; i++ {
			a := topology.NodeID(fb.intn(m.Nodes()))
			p := fb.intn(topology.MeshPorts)
			if b := m.Neighbor(a, p); b != topology.Invalid {
				fs.FailLink(a, b)
			}
		}
		fast.UpdateFaults(fs)
		interp.UpdateFaults(fs)

		src := topology.NodeID(fb.intn(m.Nodes()))
		dst := topology.NodeID(fb.intn(m.Nodes()))
		if src == dst || fs.NodeFaulty(src) || fs.NodeFaulty(dst) {
			return
		}
		hdr := routing.Header{
			Src: src, Dst: dst,
			Length:    2 + fb.intn(30),
			Misroutes: fb.intn(80),
			Marked:    fb.intn(2) == 1,
			VNet:      fb.intn(2),
		}
		inPort := routing.InjectionPort
		if v := fb.intn(topology.MeshPorts + 1); v < topology.MeshPorts {
			inPort = v
		}
		hdr2 := hdr
		reqF := routing.Request{Node: src, InPort: inPort, InVC: fb.intn(2), Hdr: &hdr}
		reqI := reqF
		reqI.Hdr = &hdr2
		fastFired, interpFired = fastFired[:0], interpFired[:0]
		a := fast.Route(reqF)
		b := interp.Route(reqI)
		if !sameCands(a, b) {
			t.Fatalf("candidates diverged: fast %v vs interpreted %v (req %+v hdr %+v)", a, b, reqF, hdr)
		}
		if !sameFirings(fastFired, interpFired) {
			t.Fatalf("fired rules diverged: %v vs %v (req %+v hdr %+v)", fastFired, interpFired, reqF, hdr)
		}
	})
}

// FuzzMazeFastPath mutates a fault set plus one maze routing request —
// including the face-routing traversal state carried in the header —
// and asserts that the dense fast path and the interpreted reference
// path select identical fired rules and identical candidates on mesh,
// torus and irregular graphs.
func FuzzMazeFastPath(f *testing.F) {
	type lane struct {
		g            topology.Graph
		fast, interp *RuleMaze
		epoch        uint64
	}
	var lanes []*lane
	irr, err := topology.RandomIrregular(20, 8, 3)
	if err != nil {
		f.Fatal(err)
	}
	if irr.Ports() > routing.MazeMaxPorts {
		f.Fatalf("irregular test graph drew degree %d > %d; pick another seed", irr.Ports(), routing.MazeMaxPorts)
	}
	for _, g := range []topology.Graph{topology.NewMesh(6, 6), topology.NewTorus(6, 5), irr} {
		fast, err := NewRuleMaze(g)
		if err != nil {
			f.Fatal(err)
		}
		interp, err := NewRuleMaze(g)
		if err != nil {
			f.Fatal(err)
		}
		interp.DisableFast = true
		lanes = append(lanes, &lane{g: g, fast: fast, interp: interp})
	}
	var fastFired, interpFired []firing
	for _, l := range lanes {
		l.fast.OnRuleFired = recordFirings(&fastFired)
		l.interp.OnRuleFired = recordFirings(&interpFired)
	}

	f.Add([]byte{})
	f.Add([]byte{0, 2, 10, 20, 0, 0, 30, 1, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 7, 3, 14, 2, 28, 1, 1, 5, 2, 9, 40, 1})
	f.Add([]byte{2, 0, 3, 0, 0, 19, 4, 2, 0, 11, 3, 6, 0, 0})
	f.Add([]byte{0, 3, 35, 1, 2, 3, 1, 2, 1, 8, 4, 3, 250, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		fb := &fuzzBytes{data: data}
		l := lanes[fb.intn(len(lanes))]
		g := l.g
		fs := fault.NewSet()
		for i, n := 0, fb.intn(5); i < n; i++ {
			fs.FailNode(topology.NodeID(fb.intn(g.Nodes())))
		}
		for i, n := 0, fb.intn(4); i < n; i++ {
			a := topology.NodeID(fb.intn(g.Nodes()))
			p := fb.intn(g.Ports())
			if b := g.Neighbor(a, p); b != topology.Invalid {
				fs.FailLink(a, b)
			}
		}
		l.fast.UpdateFaults(fs)
		l.interp.UpdateFaults(fs)
		l.epoch++

		src := topology.NodeID(fb.intn(g.Nodes()))
		dst := topology.NodeID(fb.intn(g.Nodes()))
		if src == dst || fs.NodeFaulty(src) || fs.NodeFaulty(dst) {
			return
		}
		hdr := routing.Header{
			Src: src, Dst: dst,
			Length:        2 + fb.intn(12),
			Phase:         fb.intn(2),
			MazeMode:      fb.intn(3),
			MazeStart:     topology.NodeID(fb.intn(g.Nodes())),
			MazeStartPort: fb.intn(g.Ports() + 1),
			MazeMD:        fb.intn(24),
			MazeSteps:     int(fb.next()) * 2, // crosses the hop budget
			MazeEpoch:     l.epoch,
		}
		if fb.intn(2) == 1 && l.epoch > 0 {
			hdr.MazeEpoch = l.epoch - 1 // stale traversal/escape state
		}
		inPort := routing.InjectionPort
		if v := fb.intn(g.Ports() + 1); v < g.Ports() {
			inPort = v
		}
		hdr2 := hdr
		reqF := routing.Request{Node: src, InPort: inPort, InVC: fb.intn(2), Hdr: &hdr}
		reqI := reqF
		reqI.Hdr = &hdr2
		fastFired, interpFired = fastFired[:0], interpFired[:0]
		a := l.fast.Route(reqF)
		b := l.interp.Route(reqI)
		if !sameCands(a, b) {
			t.Fatalf("%s: candidates diverged: fast %v vs interpreted %v (req %+v hdr %+v)", g.Name(), a, b, reqF, hdr)
		}
		if !sameFirings(fastFired, interpFired) {
			t.Fatalf("%s: fired rules diverged: %v vs %v (req %+v hdr %+v)", g.Name(), fastFired, interpFired, reqF, hdr)
		}
		if l.fast.UnreachableVerdict(reqF) != l.interp.UnreachableVerdict(reqI) {
			t.Fatalf("%s: verdicts diverged (req %+v)", g.Name(), reqF)
		}
	})
}

func FuzzRuleRouteCDifferential(f *testing.F) {
	h := topology.NewHypercube(4)
	fast, err := NewRuleRouteC(h)
	if err != nil {
		f.Fatal(err)
	}
	interp, err := NewRuleRouteC(h)
	if err != nil {
		f.Fatal(err)
	}
	interp.DisableFast = true
	var fastFired, interpFired []firing
	fast.OnRuleFired = recordFirings(&fastFired)
	interp.OnRuleFired = recordFirings(&interpFired)

	f.Add([]byte{})
	f.Add([]byte{0, 0, 15, 1, 0, 0})
	f.Add([]byte{2, 3, 9, 1, 2, 1, 7, 8, 1, 3, 2})
	f.Add([]byte{1, 12, 2, 0, 5, 0, 10, 0, 1, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		fb := &fuzzBytes{data: data}
		fs := fault.NewSet()
		for i, n := 0, fb.intn(3); i < n; i++ {
			fs.FailNode(topology.NodeID(fb.intn(h.Nodes())))
		}
		for i, n := 0, fb.intn(2); i < n; i++ {
			a := topology.NodeID(fb.intn(h.Nodes()))
			d := fb.intn(h.Dim)
			if b := h.Neighbor(a, d); b != topology.Invalid {
				fs.FailLink(a, b)
			}
		}
		fast.UpdateFaults(fs)
		interp.UpdateFaults(fs)

		src := topology.NodeID(fb.intn(h.Nodes()))
		dst := topology.NodeID(fb.intn(h.Nodes()))
		if src == dst || fs.NodeFaulty(src) || fs.NodeFaulty(dst) {
			return
		}
		hdr := routing.Header{
			Src: src, Dst: dst, Length: 2 + fb.intn(12),
			Phase:       fb.intn(2),
			DetourLevel: fb.intn(5),
		}
		inPort := routing.InjectionPort
		if v := fb.intn(h.Dim + 1); v < h.Dim {
			inPort = v
		}
		hdr2 := hdr
		reqF := routing.Request{Node: src, InPort: inPort, Hdr: &hdr}
		reqI := reqF
		reqI.Hdr = &hdr2
		fastFired, interpFired = fastFired[:0], interpFired[:0]
		a := fast.Route(reqF)
		b := interp.Route(reqI)
		if !sameCands(a, b) {
			t.Fatalf("candidates diverged: fast %v vs interpreted %v (req %+v hdr %+v)", a, b, reqF, hdr)
		}
		if !sameFirings(fastFired, interpFired) {
			t.Fatalf("fired rules diverged: %v vs %v (req %+v hdr %+v)", fastFired, interpFired, reqF, hdr)
		}
	})
}
