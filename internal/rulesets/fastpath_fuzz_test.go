package rulesets

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

// The fuzz targets below mutate a fault set plus one routing request
// from raw bytes and assert that the dense fast path and the
// interpreted reference path select the identical fired rules and
// produce the identical candidates. Under plain `go test` only the
// seed corpus runs; `go test -fuzz FuzzRuleNAFTA ./internal/rulesets`
// explores further.

// fuzzBytes is a zero-padded byte reader so short inputs still decode.
type fuzzBytes struct {
	data []byte
	pos  int
}

func (f *fuzzBytes) next() byte {
	if f.pos >= len(f.data) {
		return 0
	}
	b := f.data[f.pos]
	f.pos++
	return b
}

func (f *fuzzBytes) intn(n int) int { return int(f.next()) % n }

func FuzzRuleNAFTADifferential(f *testing.F) {
	m := topology.NewMesh(8, 8)
	fast, err := NewRuleNAFTA(m)
	if err != nil {
		f.Fatal(err)
	}
	interp, err := NewRuleNAFTA(m)
	if err != nil {
		f.Fatal(err)
	}
	interp.DisableFast = true
	var fastFired, interpFired []firing
	fast.OnRuleFired = recordFirings(&fastFired)
	interp.OnRuleFired = recordFirings(&interpFired)

	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 7, 7, 0, 1, 0, 0, 0})
	f.Add([]byte{2, 27, 36, 0, 0, 5, 63, 2, 12, 1, 1, 200})
	f.Add([]byte{3, 9, 10, 11, 1, 2, 3, 60, 17, 4, 30, 1, 0, 99})
	f.Add([]byte{1, 20, 2, 1, 12, 52, 1, 5, 0, 1, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		fb := &fuzzBytes{data: data}
		fs := fault.NewSet()
		for i, n := 0, fb.intn(4); i < n; i++ {
			fs.FailNode(topology.NodeID(fb.intn(m.Nodes())))
		}
		for i, n := 0, fb.intn(3); i < n; i++ {
			a := topology.NodeID(fb.intn(m.Nodes()))
			p := fb.intn(topology.MeshPorts)
			if b := m.Neighbor(a, p); b != topology.Invalid {
				fs.FailLink(a, b)
			}
		}
		fast.UpdateFaults(fs)
		interp.UpdateFaults(fs)

		src := topology.NodeID(fb.intn(m.Nodes()))
		dst := topology.NodeID(fb.intn(m.Nodes()))
		if src == dst || fs.NodeFaulty(src) || fs.NodeFaulty(dst) {
			return
		}
		hdr := routing.Header{
			Src: src, Dst: dst,
			Length:    2 + fb.intn(30),
			Misroutes: fb.intn(80),
			Marked:    fb.intn(2) == 1,
			VNet:      fb.intn(2),
		}
		inPort := routing.InjectionPort
		if v := fb.intn(topology.MeshPorts + 1); v < topology.MeshPorts {
			inPort = v
		}
		hdr2 := hdr
		reqF := routing.Request{Node: src, InPort: inPort, InVC: fb.intn(2), Hdr: &hdr}
		reqI := reqF
		reqI.Hdr = &hdr2
		fastFired, interpFired = fastFired[:0], interpFired[:0]
		a := fast.Route(reqF)
		b := interp.Route(reqI)
		if !sameCands(a, b) {
			t.Fatalf("candidates diverged: fast %v vs interpreted %v (req %+v hdr %+v)", a, b, reqF, hdr)
		}
		if !sameFirings(fastFired, interpFired) {
			t.Fatalf("fired rules diverged: %v vs %v (req %+v hdr %+v)", fastFired, interpFired, reqF, hdr)
		}
	})
}

func FuzzRuleRouteCDifferential(f *testing.F) {
	h := topology.NewHypercube(4)
	fast, err := NewRuleRouteC(h)
	if err != nil {
		f.Fatal(err)
	}
	interp, err := NewRuleRouteC(h)
	if err != nil {
		f.Fatal(err)
	}
	interp.DisableFast = true
	var fastFired, interpFired []firing
	fast.OnRuleFired = recordFirings(&fastFired)
	interp.OnRuleFired = recordFirings(&interpFired)

	f.Add([]byte{})
	f.Add([]byte{0, 0, 15, 1, 0, 0})
	f.Add([]byte{2, 3, 9, 1, 2, 1, 7, 8, 1, 3, 2})
	f.Add([]byte{1, 12, 2, 0, 5, 0, 10, 0, 1, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		fb := &fuzzBytes{data: data}
		fs := fault.NewSet()
		for i, n := 0, fb.intn(3); i < n; i++ {
			fs.FailNode(topology.NodeID(fb.intn(h.Nodes())))
		}
		for i, n := 0, fb.intn(2); i < n; i++ {
			a := topology.NodeID(fb.intn(h.Nodes()))
			d := fb.intn(h.Dim)
			if b := h.Neighbor(a, d); b != topology.Invalid {
				fs.FailLink(a, b)
			}
		}
		fast.UpdateFaults(fs)
		interp.UpdateFaults(fs)

		src := topology.NodeID(fb.intn(h.Nodes()))
		dst := topology.NodeID(fb.intn(h.Nodes()))
		if src == dst || fs.NodeFaulty(src) || fs.NodeFaulty(dst) {
			return
		}
		hdr := routing.Header{
			Src: src, Dst: dst, Length: 2 + fb.intn(12),
			Phase:       fb.intn(2),
			DetourLevel: fb.intn(5),
		}
		inPort := routing.InjectionPort
		if v := fb.intn(h.Dim + 1); v < h.Dim {
			inPort = v
		}
		hdr2 := hdr
		reqF := routing.Request{Node: src, InPort: inPort, Hdr: &hdr}
		reqI := reqF
		reqI.Hdr = &hdr2
		fastFired, interpFired = fastFired[:0], interpFired[:0]
		a := fast.Route(reqF)
		b := interp.Route(reqI)
		if !sameCands(a, b) {
			t.Fatalf("candidates diverged: fast %v vs interpreted %v (req %+v hdr %+v)", a, b, reqF, hdr)
		}
		if !sameFirings(fastFired, interpFired) {
			t.Fatalf("fired rules diverged: %v vs %v (req %+v hdr %+v)", fastFired, interpFired, reqF, hdr)
		}
	})
}
