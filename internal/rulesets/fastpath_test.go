package rulesets

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
)

// The perf claims of the dense fast path rest on it actually engaging:
// every decision base of both adapters must compile to a DenseTable.
func TestRuleAdaptersFastPathActive(t *testing.T) {
	n, err := NewRuleNAFTA(topology.NewMesh(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !n.FastPathActive() {
		t.Fatal("rule-nafta decision bases did not compile to the dense fast path")
	}
	c, err := NewRuleRouteC(topology.NewHypercube(5))
	if err != nil {
		t.Fatal(err)
	}
	if !c.FastPathActive() {
		t.Fatal("rule-routec decision bases did not compile to the dense fast path")
	}
}

// firing is one observed OnRuleFired invocation.
type firing struct {
	node topology.NodeID
	base string
	rule int
}

func recordFirings(dst *[]firing) func(topology.NodeID, string, int) {
	return func(n topology.NodeID, b string, r int) {
		*dst = append(*dst, firing{n, b, r})
	}
}

func sameFirings(a, b []firing) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameCands(a, b []routing.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Differential test: for random fault sets and requests, the dense
// fast path must produce the identical candidates, fire the identical
// rules in the identical order, and count the identical number of
// lookups as the interpreted reference path.
func TestRuleNAFTAFastMatchesInterpreted(t *testing.T) {
	m := topology.NewMesh(8, 8)
	fast, err := NewRuleNAFTA(m)
	if err != nil {
		t.Fatal(err)
	}
	interp, err := NewRuleNAFTA(m)
	if err != nil {
		t.Fatal(err)
	}
	interp.DisableFast = true
	var fastFired, interpFired []firing
	fast.OnRuleFired = recordFirings(&fastFired)
	interp.OnRuleFired = recordFirings(&interpFired)

	for seed := int64(0); seed < 4; seed++ {
		f := fault.NewSet()
		if seed > 0 { // seed 0 stays fault-free (the incoming_message base)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < int(seed); i++ {
				f.FailNode(topology.NodeID(rng.Intn(m.Nodes())))
			}
			f.FailLink(m.Node(1, 1), m.Node(1, 2))
		}
		fast.UpdateFaults(f)
		interp.UpdateFaults(f)
		rng := rand.New(rand.NewSource(seed + 100))
		for trial := 0; trial < 500; trial++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes()))
			if src == dst || f.NodeFaulty(src) || f.NodeFaulty(dst) {
				continue
			}
			hdr := routing.Header{Src: src, Dst: dst, Length: 2 + rng.Intn(12),
				Misroutes: rng.Intn(70), Marked: rng.Intn(2) == 1, VNet: rng.Intn(2)}
			inPort := routing.InjectionPort
			if rng.Intn(3) > 0 {
				inPort = rng.Intn(topology.MeshPorts)
			}
			hdr2 := hdr
			reqF := routing.Request{Node: src, InPort: inPort, InVC: rng.Intn(2), Hdr: &hdr}
			reqI := reqF
			reqI.Hdr = &hdr2
			fastFired, interpFired = fastFired[:0], interpFired[:0]
			a := fast.Route(reqF)
			b := interp.Route(reqI)
			if !sameCands(a, b) {
				t.Fatalf("seed %d trial %d: fast %v vs interpreted %v", seed, trial, a, b)
			}
			if !sameFirings(fastFired, interpFired) {
				t.Fatalf("seed %d trial %d: fired %v vs %v", seed, trial, fastFired, interpFired)
			}
			if fast.Lookups != interp.Lookups {
				t.Fatalf("seed %d trial %d: lookups %d vs %d", seed, trial, fast.Lookups, interp.Lookups)
			}
		}
	}
	if fast.Lookups == 0 {
		t.Fatal("no decisions exercised")
	}
}

// Same differential for the hypercube adapter.
func TestRuleRouteCFastMatchesInterpreted(t *testing.T) {
	h := topology.NewHypercube(5)
	fast, err := NewRuleRouteC(h)
	if err != nil {
		t.Fatal(err)
	}
	interp, err := NewRuleRouteC(h)
	if err != nil {
		t.Fatal(err)
	}
	interp.DisableFast = true
	var fastFired, interpFired []firing
	fast.OnRuleFired = recordFirings(&fastFired)
	interp.OnRuleFired = recordFirings(&interpFired)

	for seed := int64(0); seed < 4; seed++ {
		f, err := fault.Random(h, fault.RandomOptions{Nodes: int(seed), Links: 1, Seed: seed, KeepConnected: true})
		if err != nil {
			t.Fatal(err)
		}
		fast.UpdateFaults(f)
		interp.UpdateFaults(f)
		rng := rand.New(rand.NewSource(seed + 30))
		for trial := 0; trial < 500; trial++ {
			src := topology.NodeID(rng.Intn(h.Nodes()))
			dst := topology.NodeID(rng.Intn(h.Nodes()))
			if src == dst || f.NodeFaulty(src) || f.NodeFaulty(dst) {
				continue
			}
			hdr := routing.Header{Src: src, Dst: dst, Length: 6,
				Phase: rng.Intn(2), DetourLevel: rng.Intn(4)}
			inPort := routing.InjectionPort
			if rng.Intn(3) > 0 {
				inPort = rng.Intn(h.Dim)
			}
			hdr2 := hdr
			reqF := routing.Request{Node: src, InPort: inPort, Hdr: &hdr}
			reqI := reqF
			reqI.Hdr = &hdr2
			fastFired, interpFired = fastFired[:0], interpFired[:0]
			a := fast.Route(reqF)
			b := interp.Route(reqI)
			if !sameCands(a, b) {
				t.Fatalf("seed %d trial %d: fast %v vs interpreted %v", seed, trial, a, b)
			}
			if !sameFirings(fastFired, interpFired) {
				t.Fatalf("seed %d trial %d: fired %v vs %v", seed, trial, fastFired, interpFired)
			}
			if fast.Lookups != interp.Lookups {
				t.Fatalf("seed %d trial %d: lookups %d vs %d", seed, trial, fast.Lookups, interp.Lookups)
			}
		}
	}
}

// driveRuleNAFTA runs a deterministic faulty workload and returns the
// whole-network statistics plus the KRuleFired events the flight
// recorder observed.
func driveRuleNAFTA(t *testing.T, disableFast bool) (network.Stats, []trace.Event) {
	t.Helper()
	m := topology.NewMesh(8, 8)
	alg, err := NewRuleNAFTA(m)
	if err != nil {
		t.Fatal(err)
	}
	alg.DisableFast = disableFast
	rec := trace.New(m.Nodes(), 4096)
	hook, _ := TraceRules(rec)
	alg.OnRuleFired = hook
	net := network.New(network.Config{Graph: m, Algorithm: alg, Recorder: rec})
	alg.AttachLoads(net)
	f := fault.NewSet()
	f.FailNode(m.Node(3, 3))
	f.FailNode(m.Node(4, 3))
	net.ApplyFaults(f)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 250; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes()))
		if src == dst || f.NodeFaulty(src) || f.NodeFaulty(dst) {
			continue
		}
		net.Inject(src, dst, 6)
	}
	if !net.Drain(100000) {
		t.Fatalf("network did not drain (inflight %d)", net.InFlight())
	}
	return net.Stats(), rec.Events()
}

// Whole-network statistics of a traced fast-path run must be
// bit-identical to the interpreted reference run, and the flight
// recorder must observe the identical rule firings (counter/tracing
// exactness of the fast path at system level).
func TestRuleNAFTAFastStatsBitIdentical(t *testing.T) {
	fastStats, fastEvents := driveRuleNAFTA(t, false)
	interpStats, interpEvents := driveRuleNAFTA(t, true)
	if fastStats != interpStats {
		t.Fatalf("stats diverged:\nfast        %+v\ninterpreted %+v", fastStats, interpStats)
	}
	fastFired := filterRuleFired(fastEvents)
	interpFired := filterRuleFired(interpEvents)
	if len(fastFired) == 0 {
		t.Fatal("recorder saw no rule firings")
	}
	if len(fastFired) != len(interpFired) {
		t.Fatalf("rule firing count diverged: %d vs %d", len(fastFired), len(interpFired))
	}
	for i := range fastFired {
		if fastFired[i] != interpFired[i] {
			t.Fatalf("rule firing %d diverged: %+v vs %+v", i, fastFired[i], interpFired[i])
		}
	}
}

func filterRuleFired(evs []trace.Event) []trace.Event {
	var out []trace.Event
	for _, e := range evs {
		if e.Kind == trace.KRuleFired {
			out = append(out, e)
		}
	}
	return out
}
