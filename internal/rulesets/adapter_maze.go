package rulesets

import (
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/rules"
	"repro/internal/topology"
)

// RuleMaze is a routing.Algorithm whose Maze-routing decisions are made
// by the compiled maze rule program: maze_move selects the VC0 maze
// move (productive / traversal entry / exit / wall-follow) and
// maze_escape the VC1 up*/down* escape hop offered alongside it. The
// native routing.Maze instance plays the Information Units — it digests
// graph geometry, fault knowledge and the header state machine into the
// program's input signals and keeps owning NoteHop, fault fixpoints and
// the unreachable verdict — while every per-message candidate flows
// through the rule tables, mirroring the RuleNAFTA execution model.
//
// Decisions run on the compiled dense fast path; decisions that leave
// the pure table regime fall back transparently to the interpreted
// reference path, and DisableFast forces that path everywhere (the
// differential and fuzz tests drive both and assert identical
// decisions).
type RuleMaze struct {
	g      topology.Graph
	native *routing.Maze
	prog   *Program
	move   *core.CompiledBase // maze_move
	esc    *core.CompiledBase // maze_escape
	faults *fault.Set

	layout *core.InputLayout
	exec   mazeExec
	slots  mazeSlots
	args   []rules.Value // constant [invc=0], reused across decisions

	// ctxMu guards ctxTables, the dense-table clones handed to decision
	// contexts; InvalidateTables retires them with the originals.
	ctxMu     sync.Mutex
	ctxTables []*core.DenseTable

	// DisableFast forces every decision onto the interpreted reference
	// path (the oracle the differential tests compare against).
	DisableFast bool

	// Lookups counts table lookups (interpretation steps actually
	// executed).
	Lookups int64
	// OnRuleFired, when non-nil, observes every successful rule-table
	// lookup (deciding node, base name, fired rule index).
	OnRuleFired func(node topology.NodeID, base string, rule int)
}

// mazeSlots holds the input-vector slots of every signal the decision
// bases read, resolved once at construction. The per-port arrays are
// sized to the routing.MazeMaxPorts cap; only the first Ports() entries
// are live.
type mazeSlots struct {
	mode, done, exitok, wall int
	prod, escok              [routing.MazeMaxPorts]int
}

// mazeExec bundles the mutable per-decision state of one execution
// lane (see naftaExec).
type mazeExec struct {
	iv          *core.InputVector
	moveD, escD *core.DenseTable
	scratch     *core.Machine
	lookups     *int64
	obs         routing.RuleObserver
}

// NewRuleMaze builds the native maze engine for g, compiles the maze
// program for g's port count and binds the two.
func NewRuleMaze(g topology.Graph) (*RuleMaze, error) {
	p, err := LoadMaze(g.Ports())
	if err != nil {
		return nil, err
	}
	return NewRuleMazeFromProgram(g, p, nil)
}

// NewRuleMazeFromProgram binds an already analysed maze program (which
// must have been generated for g's port count) to graph g. tables
// optionally supplies precompiled decision tables keyed by base name
// (e.g. from a reconfiguration artifact); missing entries are compiled
// in-process.
func NewRuleMazeFromProgram(g topology.Graph, p *Program, tables map[string]*core.CompiledBase) (*RuleMaze, error) {
	native, err := routing.NewMaze(g)
	if err != nil {
		return nil, err
	}
	r := &RuleMaze{
		g:      g,
		native: native,
		prog:   p,
		faults: fault.NewSet(),
		args:   []rules.Value{rules.IntVal(0)},
	}
	for _, b := range []struct {
		name string
		dst  **core.CompiledBase
	}{
		{MazeDecisionBases[0], &r.move},
		{MazeDecisionBases[1], &r.esc},
	} {
		cb := tables[b.name]
		if cb == nil {
			if cb, err = core.CompileBase(p.Checked, b.name, core.CompileOptions{}); err != nil {
				return nil, err
			}
		}
		*b.dst = cb
	}
	r.layout = core.NewInputLayout(p.Checked)
	r.exec.iv = core.NewInputVector(r.layout)
	r.exec.scratch = core.NewMachine(p.Checked, r.exec.iv.Provider())
	r.exec.lookups = &r.Lookups
	// Dense compilation is best-effort: a nil table keeps the base on
	// the interpreter (same decisions, just slower).
	for _, b := range []struct {
		cb   *core.CompiledBase
		fast **core.DenseTable
	}{{r.move, &r.exec.moveD}, {r.esc, &r.exec.escD}} {
		if dt, err := b.cb.CompileDense(r.layout); err == nil {
			*b.fast = dt
		}
	}
	s := &r.slots
	for _, e := range []struct {
		name string
		dst  *int
	}{
		{"mode", &s.mode}, {"done", &s.done}, {"exitok", &s.exitok}, {"wall", &s.wall},
	} {
		if *e.dst, err = r.layout.SlotOf(e.name); err != nil {
			return nil, err
		}
	}
	for p := 0; p < g.Ports(); p++ {
		if s.prod[p], err = r.layout.SlotOf("prod", int64(p)); err != nil {
			return nil, err
		}
		if s.escok[p], err = r.layout.SlotOf("escok", int64(p)); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// DeadlockRegime tags the adapter with the native maze discipline:
// rule and native engines implement the same VC scheme and are mutually
// hot-swappable.
func (r *RuleMaze) DeadlockRegime() string { return r.native.DeadlockRegime() }

// InvalidateTables retires the adapter's dense tables — the serial
// lane's and every clone handed to a decision context.
func (r *RuleMaze) InvalidateTables() {
	for _, dt := range []*core.DenseTable{r.exec.moveD, r.exec.escD} {
		if dt != nil {
			dt.Invalidate()
		}
	}
	r.ctxMu.Lock()
	defer r.ctxMu.Unlock()
	for _, dt := range r.ctxTables {
		dt.Invalidate()
	}
}

// FastPathActive reports whether both decision bases compiled to the
// dense fast path.
func (r *RuleMaze) FastPathActive() bool {
	return r.exec.moveD != nil && r.exec.escD != nil
}

func (r *RuleMaze) Name() string { return "rule-maze" }
func (r *RuleMaze) NumVCs() int  { return r.native.NumVCs() }

func (r *RuleMaze) Steps(req routing.Request) int { return r.native.Steps(req) }

func (r *RuleMaze) NoteHop(req routing.Request, chosen routing.Candidate) {
	r.native.NoteHop(req, chosen)
}

func (r *RuleMaze) UpdateFaults(f *fault.Set) {
	r.faults = f
	r.native.UpdateFaults(f)
}

// UnreachableVerdict forwards the native engine's component-table
// verdict (routing.UnreachableJudge): the rule tables decide moves, the
// information units certify disconnection.
func (r *RuleMaze) UnreachableVerdict(req routing.Request) bool {
	return r.native.UnreachableVerdict(req)
}

// AllocNeedsCredit forwards the native engine's credit-gated
// allocation requirement (routing.CreditGatedVA).
func (r *RuleMaze) AllocNeedsCredit() bool { return r.native.AllocNeedsCredit() }

// FlushOnFault forwards the native engine's reconfiguration flush
// (routing.ReconfigFlusher).
func (r *RuleMaze) FlushOnFault(h *routing.Header) bool { return r.native.FlushOnFault(h) }

// fillInputs digests one decision into the program's input signals via
// the native engine's fact computation (no allocation).
func (r *RuleMaze) fillInputs(e *mazeExec, req routing.Request) {
	facts := r.native.Facts(req)
	iv, s := e.iv, &r.slots
	iv.Begin()
	iv.Set(s.mode, int64(facts.Mode))
	iv.Set(s.done, int64(facts.Done))
	iv.Set(s.exitok, int64(facts.ExitOK))
	iv.Set(s.wall, int64(facts.Wall))
	for p := 0; p < facts.Ports; p++ {
		iv.Set(s.prod[p], int64(facts.Prod[p]))
		iv.Set(s.escok[p], int64(facts.EscOK[p]))
	}
}

// fire reports one successful rule selection (see RuleNAFTA.fire).
func (r *RuleMaze) fire(e *mazeExec, node topology.NodeID, base string, rule int) {
	if e.obs != nil {
		e.obs(r, node, base, rule)
		return
	}
	if r.OnRuleFired != nil {
		r.OnRuleFired(node, base, rule)
	}
}

// FireRuleObserver forwards a deferred rule-fire observation to the
// hook currently installed (routing.RuleFirer).
func (r *RuleMaze) FireRuleObserver(node topology.NodeID, base string, rule int) {
	if r.OnRuleFired != nil {
		r.OnRuleFired(node, base, rule)
	}
}

// decide runs one rule base over the exec's input vector: dense table
// first, interpreted reference path when the fast path is unavailable
// or the decision leaves the pure table regime (see RuleNAFTA.decide).
func (r *RuleMaze) decide(e *mazeExec, req routing.Request, cb *core.CompiledBase, dt *core.DenseTable) (int, bool) {
	*e.lookups++
	if dt != nil && !r.DisableFast {
		if idx, ok := dt.Lookup(e.iv, 0); ok {
			if idx >= cb.RuleCount {
				return 0, false
			}
			r.fire(e, req.Node, cb.Base, idx)
			if ret, rok := dt.Return(idx); rok {
				return int(ret.I), true
			}
			eff, err := r.prog.Checked.FireRule(cb.Base, idx, r.args, e.scratch)
			if err != nil || eff.Return == nil {
				return 0, false
			}
			return int(eff.Return.I), true
		}
	}
	m := e.scratch
	m.Reset()
	idx, err := cb.LookupRule(r.args, m)
	if err != nil || idx >= cb.RuleCount {
		return 0, false
	}
	r.fire(e, req.Node, cb.Base, idx)
	eff, err := r.prog.Checked.FireRule(cb.Base, idx, r.args, m)
	if err != nil || eff.Return == nil {
		return 0, false
	}
	return int(eff.Return.I), true
}

// Route performs the decision through the compiled rule tables. An
// empty result means unroutable — for this family, a certified
// unreachable verdict (see UnreachableVerdict).
func (r *RuleMaze) Route(req routing.Request) []routing.Candidate {
	return r.RouteAppend(req, nil)
}

// RouteAppend is the allocation-free form of Route (BufferedAlgorithm).
func (r *RuleMaze) RouteAppend(req routing.Request, buf []routing.Candidate) []routing.Candidate {
	return r.routeAppend(&r.exec, req, buf)
}

func (r *RuleMaze) routeAppend(e *mazeExec, req routing.Request, buf []routing.Candidate) []routing.Candidate {
	r.fillInputs(e, req)
	if port, ok := r.decide(e, req, r.move, e.moveD); ok {
		buf = append(buf, routing.Candidate{Port: port, VC: 0})
	}
	if port, ok := r.decide(e, req, r.esc, e.escD); ok {
		buf = append(buf, routing.Candidate{Port: port, VC: 1})
	}
	return buf
}

// NewDecisionContext hands out one independent decision lane for a
// parallel-stepper worker (routing.DecisionContexter; see the RuleNAFTA
// counterpart for the sharing contract).
func (r *RuleMaze) NewDecisionContext(obs routing.RuleObserver) routing.Algorithm {
	c := &mazeContext{parent: r}
	c.exec = mazeExec{
		iv:      core.NewInputVector(r.layout),
		lookups: &c.count,
		obs:     obs,
	}
	c.exec.scratch = core.NewMachine(r.prog.Checked, c.exec.iv.Provider())
	r.ctxMu.Lock()
	defer r.ctxMu.Unlock()
	for _, t := range []struct {
		src *core.DenseTable
		dst **core.DenseTable
	}{{r.exec.moveD, &c.exec.moveD}, {r.exec.escD, &c.exec.escD}} {
		if t.src != nil {
			cl := t.src.Clone()
			*t.dst = cl
			r.ctxTables = append(r.ctxTables, cl)
		}
	}
	return c
}

// mazeContext is one worker's decision lane over a shared RuleMaze.
type mazeContext struct {
	parent *RuleMaze
	exec   mazeExec
	count  int64
}

func (c *mazeContext) Name() string                  { return c.parent.Name() }
func (c *mazeContext) NumVCs() int                   { return c.parent.NumVCs() }
func (c *mazeContext) Steps(req routing.Request) int { return c.parent.Steps(req) }
func (c *mazeContext) NoteHop(req routing.Request, chosen routing.Candidate) {
	c.parent.NoteHop(req, chosen)
}
func (c *mazeContext) UpdateFaults(*fault.Set) {
	panic("rulesets: decision contexts share the parent's fault state; call UpdateFaults on the parent engine")
}
func (c *mazeContext) Route(req routing.Request) []routing.Candidate {
	return c.RouteAppend(req, nil)
}
func (c *mazeContext) RouteAppend(req routing.Request, buf []routing.Candidate) []routing.Candidate {
	return c.parent.routeAppend(&c.exec, req, buf)
}

// UnreachableVerdict forwards the parent's verdict plane
// (routing.UnreachableJudge); the component table is read-only during
// compute phases.
func (c *mazeContext) UnreachableVerdict(req routing.Request) bool {
	return c.parent.UnreachableVerdict(req)
}

// FlushLookups folds the context's lookup count into the parent's
// public counter (routing.LookupFlusher; called single-threaded).
func (c *mazeContext) FlushLookups() {
	c.parent.Lookups += c.count
	c.count = 0
}

var _ routing.Algorithm = (*RuleMaze)(nil)
var _ routing.BufferedAlgorithm = (*RuleMaze)(nil)
var _ routing.DecisionContexter = (*RuleMaze)(nil)
var _ routing.RuleFirer = (*RuleMaze)(nil)
var _ routing.UnreachableJudge = (*RuleMaze)(nil)
var _ routing.BufferedAlgorithm = (*mazeContext)(nil)
var _ routing.LookupFlusher = (*mazeContext)(nil)
var _ routing.UnreachableJudge = (*mazeContext)(nil)
