package rulesets

import (
	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/trace"
)

// TraceRules builds an OnRuleFired hook that records KRuleFired
// events into rec, stamped with the recorder's clock (the network
// registers itself there on attach). Base names are mapped to the
// event's Port field in first-seen order; the mapping is returned by
// reference so a post-mortem reader can resolve the indices.
func TraceRules(rec *trace.Recorder) (func(topology.NodeID, string, int), map[string]int) {
	bases := map[string]int{}
	hook := func(node topology.NodeID, base string, rule int) {
		idx, ok := bases[base]
		if !ok {
			idx = len(bases)
			bases[base] = idx
		}
		rec.Record(trace.Event{Cycle: rec.Now(), Kind: trace.KRuleFired,
			Node: int32(node), Msg: -1, Port: int16(idx), VC: -1, Arg: int32(rule)})
	}
	return hook, bases
}

// TraceMachine attaches the flight recorder to a rule-interpreter
// machine owned by the given node: every rule interpretation becomes a
// KRuleFired event and every event-manager dispatch a KDispatch event
// (Arg carries the remaining queue length). bases maps rule-base and
// event names to the Port index used in the events, shared with
// TraceRules semantics (first-seen order).
func TraceMachine(rec *trace.Recorder, node topology.NodeID, m *core.Machine, bases map[string]int) {
	if bases == nil {
		bases = map[string]int{}
	}
	idxOf := func(name string) int16 {
		idx, ok := bases[name]
		if !ok {
			idx = len(bases)
			bases[name] = idx
		}
		return int16(idx)
	}
	m.OnRuleFired = func(base string, rule int) {
		rec.Record(trace.Event{Cycle: rec.Now(), Kind: trace.KRuleFired,
			Node: int32(node), Msg: -1, Port: idxOf(base), VC: -1, Arg: int32(rule)})
	}
	m.OnDispatch = func(event string, pending int) {
		rec.Record(trace.Event{Cycle: rec.Now(), Kind: trace.KDispatch,
			Node: int32(node), Msg: -1, Port: idxOf(event), VC: -1, Arg: int32(pending)})
	}
}
