package rulesets

import "fmt"

// RouteCSource generates the ROUTE_C rule program for a hypercube of
// dimension d with an adaptivity command width of a bits (the paper's
// Table 2 uses d = 6, a = 2).
//
// The routing decision takes two interpretations: decide_dir selects
// the class of admissible outputs (ascending/descending, safe
// neighbours preferred, detour as last resort) as one of eight modes,
// and decide_vc maps the choice to a virtual channel. The per-output
// priority selection within a mode runs in the conclusion processing
// (a priority/minimum-selection FCFB), exactly as on the ARON
// interpreter where the rule table stays narrow while d-bit-wide
// logical units reduce the per-dimension vectors to the feature bits.
func RouteCSource(d, a int) string {
	loadMax := (1 << uint(a)) - 1
	if loadMax < 1 {
		loadMax = 1
	}
	return fmt.Sprintf(`
-- ROUTE_C for the %d-dimensional hypercube
CONSTANT dims = %d
CONSTANT fault_states = {safe, ounsafe, sunsafe, lfault, faulty}
CONSTANT modes = {up_safe, up_any, down_safe, down_any, bump_safe, bump_any, detour_safe, detour_any, blocked, arrived}

-- message interface / address comparison lines
INPUT diffb (dims) IN 0 TO 1    -- address bit differs from destination
INPUT upb (dims) IN 0 TO 1      -- flipping the bit increases the address
INPUT okl (dims) IN 0 TO 1      -- link and neighbour operational
INPUT nbsafe (dims) IN 0 TO 1   -- neighbour state safe (or it is the destination)
INPUT notback (dims) IN 0 TO 1  -- not the arrival dimension
INPUT phase IN 0 TO 1           -- 0 ascending, 1 descending
INPUT level IN 0 TO 3           -- detour level (hops-so-far escape)
INPUT taking_detour IN 0 TO 1
INPUT new_state (dims) IN fault_states
INPUT adapt_load (dims) IN 0 TO %d

-- node state registers
VARIABLE state IN fault_states
VARIABLE number_unsafe IN 0 TO dims
VARIABLE number_faulty IN 0 TO dims
VARIABLE neighb_state (dims) IN fault_states
-- adaptivity register (needed without fault tolerance too)
VARIABLE mean_load (dims) IN 0 TO %d

-- First interpretation: which outputs may be taken.
ON decide_dir()
  IF phase = 0 AND (EXISTS i IN 0 TO dims - 1:
       (diffb(i) = 1 AND upb(i) = 1 AND okl(i) = 1 AND notback(i) = 1 AND nbsafe(i) = 1)) THEN
     RETURN(up_safe);
  IF phase = 0 AND (EXISTS i IN 0 TO dims - 1:
       (diffb(i) = 1 AND upb(i) = 1 AND okl(i) = 1 AND notback(i) = 1)) THEN
     RETURN(up_any);
  IF EXISTS i IN 0 TO dims - 1:
       (diffb(i) = 1 AND upb(i) = 0 AND okl(i) = 1 AND notback(i) = 1 AND nbsafe(i) = 1) THEN
     RETURN(down_safe);
  IF EXISTS i IN 0 TO dims - 1:
       (diffb(i) = 1 AND upb(i) = 0 AND okl(i) = 1 AND notback(i) = 1) THEN
     RETURN(down_any);
  IF phase = 1 AND level < 3 AND (EXISTS i IN 0 TO dims - 1:
       (diffb(i) = 1 AND upb(i) = 1 AND okl(i) = 1 AND notback(i) = 1 AND nbsafe(i) = 1)) THEN
     RETURN(bump_safe);
  IF phase = 1 AND level < 3 AND (EXISTS i IN 0 TO dims - 1:
       (diffb(i) = 1 AND upb(i) = 1 AND okl(i) = 1 AND notback(i) = 1)) THEN
     RETURN(bump_any);
  IF level < 3 AND (EXISTS i IN 0 TO dims - 1:
       (diffb(i) = 0 AND okl(i) = 1 AND notback(i) = 1 AND nbsafe(i) = 1)) THEN
     RETURN(detour_safe);
  IF level < 3 AND (EXISTS i IN 0 TO dims - 1:
       (diffb(i) = 0 AND okl(i) = 1 AND notback(i) = 1)) THEN
     RETURN(detour_any);
  IF 1 = 1 THEN RETURN(blocked);
END decide_dir;

-- Second interpretation: which virtual channel the hop uses.
ON decide_vc(want IN modes)
  IF taking_detour = 1 AND level = 0 THEN RETURN(2);
  IF taking_detour = 1 AND level = 1 THEN RETURN(3);
  IF taking_detour = 1 AND (level = 2 OR level = 3) THEN RETURN(4);
  IF taking_detour = 0 AND level = 1 THEN RETURN(2);
  IF taking_detour = 0 AND level = 2 THEN RETURN(3);
  IF taking_detour = 0 AND level = 3 THEN RETURN(4);
  IF taking_detour = 0 AND level = 0 AND phase = 0 THEN RETURN(0);
  IF taking_detour = 0 AND level = 0 AND phase = 1 THEN RETURN(1);
END decide_vc;

-- State update on a message from a neighbour (Figure 4, completed):
-- counts not-safe and directly faulty neighbours and escalates the
-- node state monotonically in the fault-state lattice.
ON update_state(dir IN 0 TO dims - 1)
  IF NOT neighb_state(dir) IN {ounsafe, sunsafe, lfault, faulty}
     AND new_state(dir) IN {lfault, faulty}
     AND number_faulty >= 1 AND NOT state = sunsafe THEN
     neighb_state(dir) <- new_state(dir),
     number_faulty <- number_faulty + 1,
     number_unsafe <- number_unsafe + 1,
     state <- sunsafe,
     FORALL i IN 0 TO dims - 1: !send_newmessage(i, sunsafe);
  IF NOT neighb_state(dir) IN {ounsafe, sunsafe, lfault, faulty}
     AND new_state(dir) IN {lfault, faulty}
     AND number_unsafe >= 2 AND state = safe THEN
     neighb_state(dir) <- new_state(dir),
     number_faulty <- number_faulty + 1,
     number_unsafe <- number_unsafe + 1,
     state <- ounsafe,
     FORALL i IN 0 TO dims - 1: !send_newmessage(i, ounsafe);
  IF NOT neighb_state(dir) IN {ounsafe, sunsafe, lfault, faulty}
     AND new_state(dir) IN {lfault, faulty} THEN
     neighb_state(dir) <- new_state(dir),
     number_faulty <- number_faulty + 1,
     number_unsafe <- number_unsafe + 1;
  IF NOT neighb_state(dir) IN {ounsafe, sunsafe, lfault, faulty}
     AND new_state(dir) IN {ounsafe, sunsafe}
     AND number_unsafe >= 2 AND state = safe THEN
     neighb_state(dir) <- new_state(dir),
     number_unsafe <- number_unsafe + 1,
     state <- ounsafe,
     FORALL i IN 0 TO dims - 1: !send_newmessage(i, ounsafe);
  IF NOT neighb_state(dir) IN {ounsafe, sunsafe, lfault, faulty}
     AND new_state(dir) IN {ounsafe, sunsafe} THEN
     neighb_state(dir) <- new_state(dir),
     number_unsafe <- number_unsafe + 1;
  IF neighb_state(dir) IN {ounsafe, sunsafe}
     AND new_state(dir) IN {lfault, faulty}
     AND number_faulty >= 1 AND NOT state = sunsafe THEN
     neighb_state(dir) <- new_state(dir),
     number_faulty <- number_faulty + 1,
     state <- sunsafe,
     FORALL i IN 0 TO dims - 1: !send_newmessage(i, sunsafe);
  IF neighb_state(dir) IN {ounsafe, sunsafe}
     AND new_state(dir) IN {lfault, faulty} THEN
     neighb_state(dir) <- new_state(dir),
     number_faulty <- number_faulty + 1;
  IF NOT new_state(dir) = neighb_state(dir) THEN
     neighb_state(dir) <- new_state(dir);
END update_state;

-- Adaptivity criterion (the paper leaves it unspecified; ROUTE_C "can
-- be completed by any of the methods used there" — a sliding load
-- estimate per output suffices and is not specific to fault
-- tolerance).
ON adaptivity(dir IN 0 TO dims - 1)
  IF adapt_load(dir) > mean_load(dir) THEN
     mean_load(dir) <- mean_load(dir) + 1;
  IF adapt_load(dir) < mean_load(dir) THEN
     mean_load(dir) <- mean_load(dir) - 1;
END adaptivity;
`, d, d, loadMax, loadMax)
}

// RouteCNFTSource is the stripped-down variant: only the rule bases a
// fault-free network needs (a single decide interpretation plus the
// adaptivity criterion), with the two base virtual channels implied by
// the returned mode.
func RouteCNFTSource(d, a int) string {
	loadMax := (1 << uint(a)) - 1
	if loadMax < 1 {
		loadMax = 1
	}
	return fmt.Sprintf(`
-- stripped (non-fault-tolerant) ROUTE_C for the %d-cube
CONSTANT dims = %d
CONSTANT modes = {up_any, down_any, blocked}

INPUT diffb (dims) IN 0 TO 1
INPUT upb (dims) IN 0 TO 1
INPUT okl (dims) IN 0 TO 1
INPUT phase IN 0 TO 1
INPUT adapt_load (dims) IN 0 TO %d

VARIABLE mean_load (dims) IN 0 TO %d

ON decide_dir()
  IF phase = 0 AND (EXISTS i IN 0 TO dims - 1: (diffb(i) = 1 AND upb(i) = 1 AND okl(i) = 1)) THEN
     RETURN(up_any);
  IF EXISTS i IN 0 TO dims - 1: (diffb(i) = 1 AND upb(i) = 0 AND okl(i) = 1) THEN
     RETURN(down_any);
  IF 1 = 1 THEN RETURN(blocked);
END decide_dir;

ON adaptivity(dir IN 0 TO dims - 1)
  IF adapt_load(dir) > mean_load(dir) THEN
     mean_load(dir) <- mean_load(dir) + 1;
  IF adapt_load(dir) < mean_load(dir) THEN
     mean_load(dir) <- mean_load(dir) - 1;
END adaptivity;
`, d, d, loadMax, loadMax)
}

// MergedDecideSource is the monolithic combination of decide_dir and
// decide_vc that returns a (dimension, virtual channel) pair directly.
// It needs per-dimension priority premises instead of d-wide vector
// reductions, so its rule table grows exponentially with d — the
// paper's in-text observation that merging the two interpretations
// "would result in very large rule bases" (1024*2^d entries for the
// original encoding). Compile it with SizeOnly.
func MergedDecideSource(d, a int) string {
	src := fmt.Sprintf(`
CONSTANT dims = %d

INPUT diffb (dims) IN 0 TO 1
INPUT upb (dims) IN 0 TO 1
INPUT okl (dims) IN 0 TO 1
INPUT nbsafe (dims) IN 0 TO 1
INPUT phase IN 0 TO 1
INPUT level IN 0 TO 3

ON decide_merged()
`, d)
	// One rule per (dimension, vc-relevant level); the premise must
	// name every higher-priority dimension explicitly, which is what
	// blows the atom count up.
	for lvl := 0; lvl < 4; lvl++ {
		for i := 0; i < d; i++ {
			prem := fmt.Sprintf("phase = 0 AND level = %d AND diffb(%d) = 1 AND upb(%d) = 1 AND okl(%d) = 1 AND nbsafe(%d) = 1", lvl, i, i, i, i)
			for j := 0; j < i; j++ {
				prem += fmt.Sprintf(" AND NOT (diffb(%d) = 1 AND upb(%d) = 1 AND okl(%d) = 1 AND nbsafe(%d) = 1)", j, j, j, j)
			}
			vc := 0
			if lvl > 0 {
				vc = 1 + lvl
			}
			src += fmt.Sprintf("  IF %s THEN RETURN(%d);\n", prem, i*8+vc)
		}
	}
	src += "  IF 1 = 1 THEN RETURN(0);\nEND decide_merged;\n"
	return src
}

// RouteCMeta reproduces the row set of the paper's Table 2.
var RouteCMeta = []BaseMeta{
	{Name: "decide_dir", Meaning: "decides which outputs can be taken", NFT: true},
	{Name: "decide_vc", Meaning: "decide output and virt. channel, update adaptivity"},
	{Name: "update_state", Meaning: "state update requires counting of unsafe or faulty neighbors"},
	{Name: "adaptivity", Meaning: "create adaptivity criterion", NFT: true},
}

// RouteCNFTMeta is the stripped variant's table.
var RouteCNFTMeta = []BaseMeta{
	{Name: "decide_dir", Meaning: "decides which outputs can be taken", NFT: true},
	{Name: "adaptivity", Meaning: "create adaptivity criterion", NFT: true},
}

// LoadRouteC parses and analyses ROUTE_C for dimension d and
// adaptivity width a.
func LoadRouteC(d, a int) (*Program, error) {
	return Load(fmt.Sprintf("ROUTE_C (d=%d, a=%d)", d, a), RouteCSource(d, a), RouteCMeta)
}

// LoadRouteCNFT parses and analyses the stripped variant.
func LoadRouteCNFT(d, a int) (*Program, error) {
	return Load(fmt.Sprintf("ROUTE_C-nft (d=%d, a=%d)", d, a), RouteCNFTSource(d, a), RouteCNFTMeta)
}
