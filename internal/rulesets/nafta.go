package rulesets

// The NAFTA rule program. Directions are encoded 0=north, 1=east,
// 2=south, 3=west (matching internal/topology); lastdir 4 means the
// message is being injected. The virtual networks are 0=north-last,
// 1=south-last (matching internal/routing).
//
// Position information reaches the rules pre-compared as sign inputs
// (dxsign = sign of xdes-xpos): on the ARON interpreter these are the
// outputs of the coordinate-comparison FCFBs of the premise
// processing, and keeping them as three-valued signals instead of raw
// coordinates is what keeps the rule tables small (the alternative is
// measured by the compiler ablation options).
const naftaDecls = `
-- NAFTA for 2-D meshes: declarations
CONSTANT dirs = 4
CONSTANT signs = {neg, zero, pos}
CONSTANT nodestates = {active, deactivated}

-- message interface (header information)
INPUT dxsign IN signs
INPUT dysign IN signs
INPUT invnet IN 0 TO 1
INPUT lastdir IN 0 TO 4
INPUT msglen IN 0 TO 31
INPUT budget IN 0 TO 1

-- information units (per-output fault and load knowledge)
INPUT avail (dirs) IN 0 TO 1
INPUT avfault (dirs) IN 0 TO 1
INPUT misok (dirs) IN 0 TO 1
INPUT vlight IN 0 TO 1
INPUT nb_state (dirs) IN nodestates
INPUT nb_colfault (dirs) IN 0 TO 1
INPUT nb_run (dirs) IN 0 TO 31
INPUT link_fail (dirs) IN 0 TO 1
INPUT info_load (dirs) IN 0 TO 255
INPUT vertfault IN 0 TO 1
INPUT horizfault IN 0 TO 1
INPUT announce IN 0 TO 1

-- registers of the non-fault-tolerant core (NARA)
VARIABLE out_queue (dirs) IN 0 TO 255
VARIABLE mean_queue (dirs) IN 0 TO 255
VARIABLE fair_cnt (dirs) IN 0 TO 15
VARIABLE rr_last IN 0 TO 3
VARIABLE info_seq IN 0 TO 255
`

const naftaFTDecls = `
-- additional registers for fault tolerance
VARIABLE node_state IN nodestates
VARIABLE deadend (dirs) IN 0 TO 1
VARIABLE lineblocked (dirs) IN 0 TO 1
VARIABLE clearrun (dirs) IN 0 TO 31
VARIABLE nb_faulty IN 0 TO 4
`

// naftaNFTBases are the rule bases NARA (the non-fault-tolerant
// variant) needs too.
const naftaNFTBases = `
-- Fault-free routing decision: fully adaptive minimal with the
-- least-remaining-data criterion; horizontal outputs have priority on
-- load ties.
ON incoming_message(invc IN 0 TO 1)
  IF dxsign = pos AND avail(1) = 1 AND
     NOT ((dysign = pos AND avail(0) = 1 OR dysign = neg AND avail(2) = 1) AND vlight = 1) THEN
     RETURN(1), out_queue(1) <- out_queue(1) + msglen;
  IF dxsign = neg AND avail(3) = 1 AND
     NOT ((dysign = pos AND avail(0) = 1 OR dysign = neg AND avail(2) = 1) AND vlight = 1) THEN
     RETURN(3), out_queue(3) <- out_queue(3) + msglen;
  IF dysign = pos AND avail(0) = 1 THEN
     RETURN(0), out_queue(0) <- out_queue(0) + msglen;
  IF dysign = neg AND avail(2) = 1 THEN
     RETURN(2), out_queue(2) <- out_queue(2) + msglen;
END incoming_message;

-- Fair output scheduling: serve the output with the smallest grant
-- counter, replenish when exhausted.
ON message_finished(dir IN 0 TO 3)
  IF fair_cnt(dir) > 0 AND (FORALL j IN 0 TO 3: fair_cnt(dir) <= fair_cnt(j)) THEN
     fair_cnt(dir) <- fair_cnt(dir) - 1, rr_last <- dir;
  IF fair_cnt(dir) > 0 THEN
     fair_cnt(dir) <- fair_cnt(dir) - 1;
  IF fair_cnt(dir) = 0 THEN
     fair_cnt(dir) <- 3, rr_last <- dir;
END message_finished;

-- Update of the adaptivity criterion when a flit leaves.
ON flit_finished(dir IN 0 TO 3)
  IF out_queue(dir) > 0 THEN
     out_queue(dir) <- out_queue(dir) - 1, mean_queue(dir) <- mean_queue(dir) + 1;
  IF out_queue(dir) = 0 THEN
     mean_queue(dir) <- 0;
END flit_finished;

-- Generation of information messages to adjacent nodes.
ON tell_my_neighbors(kind IN 0 TO 1)
  IF announce = 1 THEN FORALL i IN 0 TO 3: !send_info(i, kind);
END tell_my_neighbors;

-- Update of adaptivity information received from a neighbour.
ON message_from_info_channel(dir IN 0 TO 3)
  IF info_seq < 255 THEN
     mean_queue(dir) <- info_load(dir), info_seq <- info_seq + 1;
  IF info_seq = 255 THEN
     info_seq <- 0;
END message_from_info_channel;
`

// naftaFTBases are the additional rule bases for fault tolerance. The
// per-direction eligibility predicates are modularised as subbases
// (the paper, Section 4.2): each compiles to its own small functional
// unit of the premise configuration, and the decision rule bases index
// their one-bit results — this is what keeps the decision tables small
// ("structuring and using the premise configuration allow small rule
// tables even for complex algorithms").
const naftaFTBases = `
-- Per-direction eligibility under full fault knowledge: the turn-model
-- freeze rules, the straight-shot conditions and the reversal
-- exclusions.
SUBBASE elig_n()
  IF dysign = pos AND avfault(0) = 1 AND NOT lastdir = 2 AND (invnet = 1 OR dxsign = zero) THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END elig_n;

SUBBASE elig_e()
  IF dxsign = pos AND avfault(1) = 1 AND NOT lastdir = 3
     AND NOT (invnet = 1 AND lastdir = 2) AND NOT (invnet = 0 AND lastdir = 0) THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END elig_e;

SUBBASE elig_s()
  IF dysign = neg AND avfault(2) = 1 AND NOT lastdir = 0 AND (invnet = 0 OR dxsign = zero) THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END elig_s;

SUBBASE elig_w()
  IF dxsign = neg AND avfault(3) = 1 AND NOT lastdir = 1
     AND NOT (invnet = 1 AND lastdir = 2) AND NOT (invnet = 0 AND lastdir = 0) THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END elig_w;

-- Routing decision with full fault knowledge (set 1 already merged
-- into the avfault inputs by the information units); horizontal
-- outputs have priority on load ties.
ON in_message_ft(invc IN 0 TO 1)
  IF elig_e() = 1 AND NOT ((elig_n() = 1 OR elig_s() = 1) AND vlight = 1) THEN RETURN(1);
  IF elig_w() = 1 AND NOT ((elig_n() = 1 OR elig_s() = 1) AND vlight = 1) THEN RETURN(3);
  IF elig_n() = 1 THEN RETURN(0);
  IF elig_s() = 1 THEN RETURN(2);
END in_message_ft;

-- Per-direction misroute admissibility (exception mode).
SUBBASE mis_n()
  IF budget = 1 AND dysign IN {neg, zero} AND misok(0) = 1 AND invnet = 1 AND NOT lastdir = 2 THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END mis_n;

SUBBASE mis_e()
  IF budget = 1 AND dxsign IN {neg, zero} AND misok(1) = 1 AND NOT lastdir = 3
     AND NOT (invnet = 1 AND lastdir = 2) AND NOT (invnet = 0 AND lastdir = 0) THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END mis_e;

SUBBASE mis_s()
  IF budget = 1 AND dysign IN {zero, pos} AND misok(2) = 1 AND invnet = 0 AND NOT lastdir = 0 THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END mis_s;

SUBBASE mis_w()
  IF budget = 1 AND dxsign IN {zero, pos} AND misok(3) = 1 AND NOT lastdir = 1
     AND NOT (invnet = 1 AND lastdir = 2) AND NOT (invnet = 0 AND lastdir = 0) THEN RETURN(1);
  IF 1 = 1 THEN RETURN(0);
END mis_w;

-- Exception handling: misroute a blocked message around the fault
-- region (marked, within the detour budget).
ON test_exception(invc IN 0 TO 1)
  IF mis_n() = 1 THEN RETURN(0), !mark_message(0);
  IF mis_e() = 1 THEN RETURN(1), !mark_message(1);
  IF mis_s() = 1 THEN RETURN(2), !mark_message(2);
  IF mis_w() = 1 THEN RETURN(3), !mark_message(3);
END test_exception;

-- New fault states require an update of the routing data (dead-end
-- tables propagated in a wave).
ON update_dir_table(dir IN 0 TO 3)
  IF nb_colfault(dir) = 1 AND deadend(dir) = 0 THEN
     deadend(dir) <- 1, FORALL i IN 0 TO 3: !send_deadend(i);
  IF nb_colfault(dir) = 0 AND deadend(dir) = 1 THEN
     deadend(dir) <- 0;
END update_dir_table;

-- Status from a neighbour node or change of a link state: convex
-- completion (deactivate on orthogonal fault observations) and
-- clear-run propagation.
ON calculate_new_node_state(dir IN 0 TO 3)
  IF vertfault = 1 AND horizfault = 1 AND node_state = active THEN
     node_state <- deactivated, FORALL i IN 0 TO 3: !send_state(i);
  IF nb_state(dir) = deactivated AND node_state = active THEN
     clearrun(dir) <- 0, lineblocked(dir) <- 1;
  IF nb_state(dir) = active AND link_fail(dir) = 0 THEN
     clearrun(dir) <- MIN(31, nb_run(dir) + 1), lineblocked(dir) <- 0;
END calculate_new_node_state;

-- Update of the node state on a failure notification.
ON fault_occured(dir IN 0 TO 3)
  IF dir IN {0, 2} AND nb_faulty < 4 THEN
     nb_faulty <- nb_faulty + 1, !recompute_vert();
  IF dir IN ({1} + {3}) AND nb_faulty < 4 THEN
     nb_faulty <- nb_faulty + 1, !recompute_horiz();
END fault_occured;

-- Consistency of neighbouring states (escalation via the state
-- lattice).
ON consider_neighbor_state(dir IN 0 TO 3)
  IF MEET(node_state, nb_state(dir)) = deactivated AND nb_faulty < 4 AND node_state = active THEN
     nb_faulty <- nb_faulty + 1;
END consider_neighbor_state;
`

// NAFTASource is the complete NAFTA rule program.
func NAFTASource() string { return naftaDecls + naftaFTDecls + naftaNFTBases + naftaFTBases }

// NARASource is the stripped, non-fault-tolerant program: exactly the
// rule bases marked nft in Table 1 ("for NAFTA the non-fault-tolerant
// version is simply NARA").
func NARASource() string { return naftaDecls + naftaNFTBases }

// NAFTAMeta reproduces the row set of the paper's Table 1.
var NAFTAMeta = []BaseMeta{
	{Name: "incoming_message", Meaning: "handling of an incoming message", NFT: true},
	{Name: "in_message_ft", Meaning: "routing decision in ft mode"},
	{Name: "update_dir_table", Meaning: "new fault states require update of data"},
	{Name: "message_finished", Meaning: "fair output scheduling", NFT: true},
	{Name: "calculate_new_node_state", Meaning: "status from a neighbor node or change of a link state"},
	{Name: "test_exception", Meaning: "handling of messages in a special situation"},
	{Name: "tell_my_neighbors", Meaning: "generation of messages to adjacent nodes", NFT: true},
	{Name: "flit_finished", Meaning: "update adaptivity criterion", NFT: true},
	{Name: "fault_occured", Meaning: "update of node state on failure"},
	{Name: "message_from_info_channel", Meaning: "update of adaptivity or fault information", NFT: true},
	{Name: "consider_neighbor_state", Meaning: "consistency of neighboring states"},
}

// NARAMeta is the nft subset of NAFTAMeta.
var NARAMeta = func() []BaseMeta {
	var out []BaseMeta
	for _, m := range NAFTAMeta {
		if m.NFT {
			out = append(out, m)
		}
	}
	return out
}()

// LoadNAFTA parses and analyses the NAFTA program.
func LoadNAFTA() (*Program, error) { return Load("NAFTA", NAFTASource(), NAFTAMeta) }

// LoadNARA parses and analyses the NARA program.
func LoadNARA() (*Program, error) { return Load("NARA", NARASource(), NARAMeta) }

// naftaMonolithicFT is the pre-modularisation encoding of the two
// fault-tolerant decision bases: the per-direction eligibility logic
// is inlined into the premises instead of factored into subbases. It
// is behaviourally identical and exists for the E10c ablation, which
// measures what the paper's premise-configuration structuring saves.
const naftaMonolithicFT = `
ON in_message_ft(invc IN 0 TO 1)
  IF dxsign = pos AND avfault(1) = 1 AND NOT lastdir = 3
     AND NOT (invnet = 1 AND lastdir = 2) AND NOT (invnet = 0 AND lastdir = 0)
     AND NOT ((dysign = pos AND avfault(0) = 1 AND NOT lastdir = 2 AND (invnet = 1 OR dxsign = zero)
           OR dysign = neg AND avfault(2) = 1 AND NOT lastdir = 0 AND (invnet = 0 OR dxsign = zero))
          AND vlight = 1) THEN
     RETURN(1);
  IF dxsign = neg AND avfault(3) = 1 AND NOT lastdir = 1
     AND NOT (invnet = 1 AND lastdir = 2) AND NOT (invnet = 0 AND lastdir = 0)
     AND NOT ((dysign = pos AND avfault(0) = 1 AND NOT lastdir = 2 AND (invnet = 1 OR dxsign = zero)
           OR dysign = neg AND avfault(2) = 1 AND NOT lastdir = 0 AND (invnet = 0 OR dxsign = zero))
          AND vlight = 1) THEN
     RETURN(3);
  IF dysign = pos AND avfault(0) = 1 AND NOT lastdir = 2 AND (invnet = 1 OR dxsign = zero) THEN
     RETURN(0);
  IF dysign = neg AND avfault(2) = 1 AND NOT lastdir = 0 AND (invnet = 0 OR dxsign = zero) THEN
     RETURN(2);
END in_message_ft;

ON test_exception(invc IN 0 TO 1)
  IF budget = 1 AND dysign IN {neg, zero} AND misok(0) = 1 AND invnet = 1 AND NOT lastdir = 2 THEN
     RETURN(0), !mark_message(0);
  IF budget = 1 AND dxsign IN {neg, zero} AND misok(1) = 1 AND NOT lastdir = 3
     AND NOT (invnet = 1 AND lastdir = 2) AND NOT (invnet = 0 AND lastdir = 0) THEN
     RETURN(1), !mark_message(1);
  IF budget = 1 AND dysign IN {zero, pos} AND misok(2) = 1 AND invnet = 0 AND NOT lastdir = 0 THEN
     RETURN(2), !mark_message(2);
  IF budget = 1 AND dxsign IN {zero, pos} AND misok(3) = 1 AND NOT lastdir = 1
     AND NOT (invnet = 1 AND lastdir = 2) AND NOT (invnet = 0 AND lastdir = 0) THEN
     RETURN(3), !mark_message(3);
END test_exception;
`

// NAFTAMonolithicDecisionSource is a program containing only the
// declarations and the inlined (subbase-free) FT decision bases, for
// the structuring ablation.
func NAFTAMonolithicDecisionSource() string { return naftaDecls + naftaFTDecls + naftaMonolithicFT }
