package rulesets

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/rules"
	"repro/internal/topology"
)

func TestLoadPrograms(t *testing.T) {
	if _, err := LoadNAFTA(); err != nil {
		t.Fatalf("NAFTA: %v", err)
	}
	if _, err := LoadNARA(); err != nil {
		t.Fatalf("NARA: %v", err)
	}
	if _, err := LoadRouteC(6, 2); err != nil {
		t.Fatalf("ROUTE_C: %v", err)
	}
	if _, err := LoadRouteCNFT(6, 2); err != nil {
		t.Fatalf("ROUTE_C-nft: %v", err)
	}
}

func TestNAFTACostTable(t *testing.T) {
	p, err := LoadNAFTA()
	if err != nil {
		t.Fatal(err)
	}
	tb, pc, err := p.CostTable(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 11 {
		t.Fatalf("Table 1 must have 11 rule bases, got %d", tb.Rows())
	}
	nft := 0
	for _, m := range NAFTAMeta {
		if m.NFT {
			nft++
		}
	}
	if nft != 5 {
		t.Fatalf("Table 1 has 5 nft-marked bases, got %d", nft)
	}
	// The decision base dominates the table budget, like the paper's
	// incoming_message row.
	var inMsg, total int64
	for _, b := range pc.Bases {
		total += b.MemoryBits
		if b.Name == "incoming_message" || b.Name == "in_message_ft" {
			inMsg += b.MemoryBits
		}
	}
	if inMsg*2 < total {
		t.Fatalf("decision bases should dominate: %d of %d bits", inMsg, total)
	}
}

func TestRouteCCostTable(t *testing.T) {
	p, err := LoadRouteC(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	tb, pc, err := p.CostTable(core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 4 {
		t.Fatalf("Table 2 must have 4 rule bases, got %d", tb.Rows())
	}
	// "The total size of 2960 bits of rule table memory for a 64-node
	// hypercube and a=2 is really small": ours must be the same order
	// of magnitude.
	if pc.TotalTableBits < 300 || pc.TotalTableBits > 30000 {
		t.Fatalf("total ROUTE_C table bits = %d, expected a few kilobits", pc.TotalTableBits)
	}
}

func TestNAFTARegisterSplit(t *testing.T) {
	p, err := LoadNAFTA()
	if err != nil {
		t.Fatal(err)
	}
	total, ftOnly, err := p.FTOnlyRegisterBits()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 159 bits total, 47 for fault tolerance (~30%). The shape
	// requirement: a substantial minority of the register bits exist
	// only for fault tolerance.
	if ftOnly <= 0 || ftOnly >= total {
		t.Fatalf("register split total=%d ftOnly=%d", total, ftOnly)
	}
	frac := float64(ftOnly) / float64(total)
	if frac < 0.1 || frac > 0.6 {
		t.Fatalf("FT register fraction %.2f outside the plausible band", frac)
	}
}

func TestRouteCRegisterGrowth(t *testing.T) {
	// Paper: ROUTE_C needs 15d + 2 log d + 3 register bits — linear
	// growth in the dimension.
	var bits []int64
	for _, d := range []int{3, 4, 5, 6, 7, 8} {
		p, err := LoadRouteC(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		rc := core.RegisterUsage(p.Checked)
		bits = append(bits, rc.Bits)
	}
	for i := 1; i < len(bits); i++ {
		if bits[i] <= bits[i-1] {
			t.Fatalf("register bits must grow with d: %v", bits)
		}
	}
	// Roughly linear: doubling d from 4 to 8 should less than triple
	// the bits.
	if bits[5] > 3*bits[1] {
		t.Fatalf("register growth super-linear: %v", bits)
	}
}

func TestMergedTableBlowup(t *testing.T) {
	for _, d := range []int{4, 6, 8} {
		split, err := LoadRouteC(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		var splitDirVC int64
		pc, err := core.AnalyzeCost(split.Checked, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range pc.Bases {
			if b.Name == "decide_dir" || b.Name == "decide_vc" {
				splitDirVC += b.MemoryBits
			}
		}
		mergedProg, err := rules.Parse(MergedDecideSource(d, 2))
		if err != nil {
			t.Fatal(err)
		}
		mc, err := rules.Analyze(mergedProg)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := core.CompileBase(mc, "decide_merged", core.CompileOptions{SizeOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if cb.MemoryBits() < 16*splitDirVC {
			t.Fatalf("d=%d: merged table %d bits should dwarf split %d bits",
				d, cb.MemoryBits(), splitDirVC)
		}
	}
	// And the blowup is exponential in d.
	sizes := map[int]int64{}
	for _, d := range []int{4, 6, 8} {
		mc, err := rules.Analyze(mustParse(t, MergedDecideSource(d, 2)))
		if err != nil {
			t.Fatal(err)
		}
		cb, err := core.CompileBase(mc, "decide_merged", core.CompileOptions{SizeOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		sizes[d] = cb.Entries
	}
	if sizes[6] < 4*sizes[4] || sizes[8] < 4*sizes[6] {
		t.Fatalf("merged entries should grow exponentially: %v", sizes)
	}
}

func mustParse(t *testing.T, src string) *rules.Program {
	t.Helper()
	p, err := rules.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// ---------------------------------------------------------------------
// Equivalence: mesh decision rule bases vs the native implementation.

// meshInputs derives the rule-program inputs from a native NAFTA
// decision state.
type meshInputs struct {
	vals map[string]rules.Value
}

func signVal(c *rules.Checked, v int) rules.Value {
	signs := c.SymbolSets["signs"]
	switch {
	case v < 0:
		return rules.SymVal(signs, 0) // neg
	case v == 0:
		return rules.SymVal(signs, 1) // zero
	default:
		return rules.SymVal(signs, 2) // pos
	}
}

func bitVal(b bool) rules.Value {
	if b {
		return rules.Value{T: rules.IntType(0, 1), I: 1}
	}
	return rules.Value{T: rules.IntType(0, 1), I: 0}
}

func (mi *meshInputs) provider(name string, idx []int64) (rules.Value, error) {
	k := name
	for _, i := range idx {
		k += fmt.Sprintf("/%d", i)
	}
	v, ok := mi.vals[k]
	if !ok {
		return rules.Value{}, fmt.Errorf("unset input %s", k)
	}
	return v, nil
}

// fakeLoads is a LoadView with per-port queued data and uniform
// credits.
type fakeLoads struct{ q [4]int }

func (f fakeLoads) OutFree(topology.NodeID, int, int) bool      { return true }
func (f fakeLoads) Credits(topology.NodeID, int, int) int       { return 4 }
func (f fakeLoads) QueuedFlits(_ topology.NodeID, p, _ int) int { return f.q[p] }

func buildMeshScenario(t *testing.T, c *rules.Checked, m *topology.Mesh, alg *routing.NAFTA,
	req routing.Request, loads fakeLoads) *meshInputs {
	t.Helper()
	facts := alg.PortFacts(req)
	cx, cy := m.XY(req.Node)
	dx, dy := m.XY(req.Hdr.Dst)
	vnet := alg.VNetOf(req)
	lastdir := 4
	if req.InPort != routing.InjectionPort {
		lastdir = topology.OppositeMeshPort(req.InPort)
	}
	mi := &meshInputs{vals: map[string]rules.Value{
		"dxsign":  signVal(c, dx-cx),
		"dysign":  signVal(c, dy-cy),
		"invnet":  rules.Value{T: rules.IntType(0, 1), I: int64(vnet)},
		"lastdir": rules.Value{T: rules.IntType(0, 4), I: int64(lastdir)},
		"msglen":  rules.Value{T: rules.IntType(0, 31), I: int64(req.Hdr.Length)},
		"budget":  bitVal(req.Hdr.Misroutes < 4*(m.W+m.H)),
	}}
	for p := 0; p < 4; p++ {
		mi.vals[fmt.Sprintf("avail/%d", p)] = bitVal(facts[p].Usable)
		mi.vals[fmt.Sprintf("avfault/%d", p)] = bitVal(facts[p].Usable && facts[p].Sideways && facts[p].EntryMinimal)
		mi.vals[fmt.Sprintf("misok/%d", p)] = bitVal(facts[p].Usable && facts[p].Sideways && facts[p].EntryMisroute)
	}
	// vlight: vertical minimal output strictly lighter than the
	// horizontal minimal output.
	vPort, hPort := -1, -1
	if dy > cy {
		vPort = topology.North
	} else if dy < cy {
		vPort = topology.South
	}
	if dx > cx {
		hPort = topology.East
	} else if dx < cx {
		hPort = topology.West
	}
	vlight := false
	if vPort >= 0 && hPort >= 0 {
		vlight = loads.q[vPort] < loads.q[hPort]
	}
	mi.vals["vlight"] = bitVal(vlight)
	return mi
}

func TestIncomingMessageMatchesNARA(t *testing.T) {
	p, err := LoadNARA()
	if err != nil {
		t.Fatal(err)
	}
	m := topology.NewMesh(16, 16)
	native := routing.NewNARA(m)
	nafta := routing.NewNAFTA(m) // fault-free: supplies the PortFacts
	sel := routing.MinQueue{}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 1500; trial++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes()))
		if src == dst {
			continue
		}
		hdr := &routing.Header{Src: src, Dst: dst, Length: 8}
		req := routing.Request{Node: src, InPort: routing.InjectionPort, Hdr: hdr}
		loads := fakeLoads{}
		for i := range loads.q {
			loads.q[i] = rng.Intn(16)
		}
		cands := native.Route(req)
		var want int = -1
		if len(cands) > 0 {
			want = sel.Select(loads, src, cands, hdr).Port
		}
		mi := buildMeshScenario(t, p.Checked, m, nafta, req, loads)
		mach := core.NewMachine(p.Checked, mi.provider)
		idx, ret, err := mach.InvokeNow("incoming_message", rules.IntVal(0))
		if err != nil {
			t.Fatal(err)
		}
		if want == -1 {
			if idx != -1 {
				t.Fatalf("trial %d: rules picked %v, native has no candidate", trial, ret)
			}
			continue
		}
		if idx == -1 || ret == nil {
			t.Fatalf("trial %d (%d->%d): rules found nothing, native picked %d", trial, src, dst, want)
		}
		if ret.I != int64(want) {
			t.Fatalf("trial %d (%d->%d): rules %d, native %d (loads %v)", trial, src, dst, ret.I, want, loads.q)
		}
	}
}

func TestFTDecisionMatchesNAFTA(t *testing.T) {
	p, err := LoadNAFTA()
	if err != nil {
		t.Fatal(err)
	}
	m := topology.NewMesh(12, 12)
	sel := routing.MinQueue{}
	rng := rand.New(rand.NewSource(93))
	for scenario := 0; scenario < 12; scenario++ {
		f, err := fault.Random(m, fault.RandomOptions{Nodes: 3, Links: 1, Seed: int64(scenario), KeepConnected: true})
		if err != nil {
			t.Fatal(err)
		}
		native := routing.NewNAFTA(m)
		native.UpdateFaults(f)
		blocks := native.Blocks()
		for trial := 0; trial < 400; trial++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes()))
			if src == dst || blocks.DisabledNode(src) || blocks.DisabledNode(dst) {
				continue
			}
			hdr := &routing.Header{Src: src, Dst: dst, Length: 8,
				VNet: rng.Intn(2), Misroutes: rng.Intn(3)}
			inPort := routing.InjectionPort
			if rng.Intn(3) > 0 {
				// A plausible in-flight arrival port.
				pp := rng.Intn(4)
				if m.Neighbor(src, pp) != topology.Invalid {
					inPort = pp
				}
			}
			req := routing.Request{Node: src, InPort: inPort, InVC: hdr.VNet, Hdr: hdr}
			loads := fakeLoads{}
			for i := range loads.q {
				loads.q[i] = rng.Intn(16)
			}
			cands := native.Route(req)
			mi := buildMeshScenario(t, p.Checked, m, native, req, loads)
			mach := core.NewMachine(p.Checked, mi.provider)
			idx, ret, err := mach.InvokeNow("in_message_ft", rules.IntVal(0))
			if err != nil {
				t.Fatal(err)
			}
			if idx == -1 {
				// Exception path: second interpretation.
				idx, ret, err = mach.InvokeNow("test_exception", rules.IntVal(0))
				if err != nil {
					t.Fatal(err)
				}
			}
			if len(cands) == 0 {
				if idx != -1 {
					t.Fatalf("scenario %d trial %d (%d->%d): rules picked %v, native unroutable",
						scenario, trial, src, dst, ret)
				}
				continue
			}
			// Native selection: MinQueue on the minimal path, first
			// candidate on the exception path (the candidates arrive
			// in port priority order).
			var want int
			if facts := native.PortFacts(req); facts[cands[0].Port].Minimal {
				want = sel.Select(loads, src, cands, hdr).Port
			} else {
				want = cands[0].Port
			}
			if idx == -1 || ret == nil {
				t.Fatalf("scenario %d trial %d (%d->%d, in %d, vnet %d): rules found nothing, native %d (cands %v)",
					scenario, trial, src, dst, inPort, hdr.VNet, want, cands)
			}
			if ret.I != int64(want) {
				t.Fatalf("scenario %d trial %d (%d->%d, in %d, vnet %d): rules %d, native %d (cands %v loads %v)",
					scenario, trial, src, dst, inPort, hdr.VNet, ret.I, want, cands, loads.q)
			}
		}
	}
}
