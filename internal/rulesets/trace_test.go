package rulesets

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/topology"
	"repro/internal/trace"
)

func TestTraceRulesRecordsFirings(t *testing.T) {
	rec := trace.New(4, 16)
	hook, bases := TraceRules(rec)
	hook(topology.NodeID(2), "decide_ft", 5)
	hook(topology.NodeID(3), "decide_ex", 1)
	hook(topology.NodeID(2), "decide_ft", 7)
	evs := rec.Events()
	if len(evs) != 3 {
		t.Fatalf("recorded %d events", len(evs))
	}
	if bases["decide_ft"] != 0 || bases["decide_ex"] != 1 {
		t.Fatalf("base indices %v", bases)
	}
	for _, e := range evs {
		if e.Kind != trace.KRuleFired {
			t.Fatalf("kind %v", e.Kind)
		}
	}
	// The base index travels in Port, the fired rule in Arg (the merge
	// is node-major on equal cycles, so index by node).
	node2 := rec.NodeEvents(2)
	if len(node2) != 2 || node2[0].Port != 0 || node2[0].Arg != 5 || node2[1].Arg != 7 {
		t.Fatalf("node 2 events %+v", node2)
	}
	node3 := rec.NodeEvents(3)
	if len(node3) != 1 || node3[0].Port != 1 || node3[0].Arg != 1 {
		t.Fatalf("node 3 events %+v", node3)
	}
}

// TestTraceMachineRecordsDispatches drives an internal event cascade
// through a traced machine and checks the recorder saw one KDispatch
// per dequeued event plus one KRuleFired per interpretation.
func TestTraceMachineRecordsDispatches(t *testing.T) {
	src := `
VARIABLE hits IN 0 TO 7
ON ping(k IN 0 TO 3)
  IF k > 0 THEN hits <- hits + 1, !ping(k - 1);
  IF k = 0 THEN hits <- hits + 1;
END ping;
`
	prog, err := rules.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rules.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(c, nil)
	rec := trace.New(1, 32)
	bases := map[string]int{}
	TraceMachine(rec, topology.NodeID(0), m, bases)

	m.Post("ping", rules.IntVal(3))
	steps, err := m.RunToQuiescence(100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 4 {
		t.Fatalf("steps = %d, want 4", steps)
	}
	var dispatches, firings int
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KDispatch:
			dispatches++
			if e.Port != int16(bases["ping"]) {
				t.Fatalf("dispatch names wrong event: %+v (bases %v)", e, bases)
			}
		case trace.KRuleFired:
			firings++
		}
	}
	if dispatches != 4 || firings != 4 {
		t.Fatalf("dispatches=%d firings=%d, want 4/4", dispatches, firings)
	}
}
