package rulesets

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/rules"
	"repro/internal/topology"
)

// RuleRouteC drives a hypercube network through the compiled ROUTE_C
// rule program: decide_dir's table selects the output mode, decide_vc's
// table the virtual channel — the paper's two interpretations per
// decision. The native instance keeps the distributed safe/unsafe
// states (the Information Units); the per-mode priority selection runs
// in the conclusion processing, modelled here by a small priority
// encoder over the same input lines.
type RuleRouteC struct {
	cube   *topology.Hypercube
	native *routing.RouteC
	prog   *Program
	dir    *core.CompiledBase
	vc     *core.CompiledBase
	faults *fault.Set
	// Lookups counts rule-table lookups (two per decision).
	Lookups int64
	// OnRuleFired, when non-nil, observes every successful rule-table
	// lookup (deciding node, base name, fired rule index); the flight
	// recorder attaches here.
	OnRuleFired func(node topology.NodeID, base string, rule int)
}

// NewRuleRouteC compiles ROUTE_C for cube h (adaptivity width 2).
func NewRuleRouteC(h *topology.Hypercube) (*RuleRouteC, error) {
	p, err := LoadRouteC(h.Dim, 2)
	if err != nil {
		return nil, err
	}
	r := &RuleRouteC{
		cube:   h,
		native: routing.NewRouteC(h),
		prog:   p,
		faults: fault.NewSet(),
	}
	if r.dir, err = core.CompileBase(p.Checked, "decide_dir", core.CompileOptions{}); err != nil {
		return nil, err
	}
	if r.vc, err = core.CompileBase(p.Checked, "decide_vc", core.CompileOptions{}); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *RuleRouteC) Name() string { return "rule-routec" }
func (r *RuleRouteC) NumVCs() int  { return r.native.NumVCs() }

// Steps is always two interpretations (decide_dir, decide_vc).
func (r *RuleRouteC) Steps(routing.Request) int { return 2 }

func (r *RuleRouteC) NoteHop(req routing.Request, chosen routing.Candidate) {
	r.native.NoteHop(req, chosen)
}

func (r *RuleRouteC) UpdateFaults(f *fault.Set) {
	r.faults = f
	r.native.UpdateFaults(f)
}

// lines holds the per-decision input lines shared by the rule tables
// and the conclusion-processing priority encoder.
type cubeLines struct {
	diff, up, ok, safe, notback []bool
	// stateClass carries the full neighbour-state ordering for the
	// conclusion-processing priority encoder (0 = safe or the
	// destination, then ounsafe, sunsafe, faulty).
	stateClass []int
}

func (r *RuleRouteC) linesFor(req routing.Request) cubeLines {
	d := r.cube.Dim
	l := cubeLines{
		diff:       make([]bool, d),
		up:         make([]bool, d),
		ok:         make([]bool, d),
		safe:       make([]bool, d),
		notback:    make([]bool, d),
		stateClass: make([]int, d),
	}
	states := r.native.States()
	for i := 0; i < d; i++ {
		nb := r.cube.Neighbor(req.Node, i)
		l.diff[i] = req.Node&(1<<i) != req.Hdr.Dst&(1<<i)
		l.up[i] = req.Node&(1<<i) == 0
		l.ok[i] = r.faults.PortUsable(r.cube, req.Node, i)
		l.safe[i] = nb == req.Hdr.Dst || states[nb] == routing.StateSafe
		l.notback[i] = i != req.InPort
		if nb == req.Hdr.Dst {
			l.stateClass[i] = 0
		} else {
			l.stateClass[i] = int(states[nb])
		}
	}
	return l
}

func (r *RuleRouteC) providerFor(req routing.Request, l cubeLines, takingDetour bool, outPhase int) core.InputProvider {
	bit := func(b bool) rules.Value {
		if b {
			return rules.Value{T: rules.IntType(0, 1), I: 1}
		}
		return rules.Value{T: rules.IntType(0, 1), I: 0}
	}
	return func(name string, idx []int64) (rules.Value, error) {
		switch name {
		case "diffb":
			return bit(l.diff[idx[0]]), nil
		case "upb":
			return bit(l.up[idx[0]]), nil
		case "okl":
			return bit(l.ok[idx[0]]), nil
		case "nbsafe":
			return bit(l.safe[idx[0]]), nil
		case "notback":
			return bit(l.notback[idx[0]]), nil
		case "phase":
			return rules.Value{T: rules.IntType(0, 1), I: int64(outPhase)}, nil
		case "level":
			return rules.Value{T: rules.IntType(0, 3), I: int64(req.Hdr.DetourLevel)}, nil
		case "taking_detour":
			return bit(takingDetour), nil
		case "new_state":
			return r.prog.Checked.Symbols["safe"], nil
		case "adapt_load":
			return rules.Value{T: rules.IntType(0, 3)}, nil
		}
		return rules.Value{}, fmt.Errorf("rule-routec: unset input %s", name)
	}
}

// decide runs one compiled table and returns the RETURN value ordinal.
func (r *RuleRouteC) decide(node topology.NodeID, cb *core.CompiledBase, env rules.Env, args ...rules.Value) (int64, error) {
	r.Lookups++
	idx, err := cb.LookupRule(args, env)
	if err != nil {
		return 0, err
	}
	if idx >= cb.RuleCount {
		return 0, fmt.Errorf("rule-routec: %s selected no rule", cb.Base)
	}
	if r.OnRuleFired != nil {
		r.OnRuleFired(node, cb.Base, idx)
	}
	eff, err := r.prog.Checked.FireRule(cb.Base, idx, args, env)
	if err != nil || eff.Return == nil {
		return 0, fmt.Errorf("rule-routec: %s rule %d has no value (%v)", cb.Base, idx, err)
	}
	return eff.Return.I, nil
}

// portsForMode is the conclusion-processing priority logic: expand a
// decide_dir mode back into the admissible ports, lowest dimension
// first.
func (r *RuleRouteC) portsForMode(mode string, l cubeLines, hdrPhase int) ([]int, bool) {
	d := r.cube.Dim
	var eligible func(i int) bool
	detour := false
	switch mode {
	case "up_safe", "up_any":
		eligible = func(i int) bool { return l.diff[i] && l.up[i] && l.ok[i] && l.notback[i] }
	case "down_safe", "down_any":
		eligible = func(i int) bool { return l.diff[i] && !l.up[i] && l.ok[i] && l.notback[i] }
	case "bump_safe", "bump_any":
		// Minimal ascending hops that claim the next level's channel
		// (a descending-entry level ran out of down work).
		eligible = func(i int) bool { return l.diff[i] && l.up[i] && l.ok[i] && l.notback[i] }
		detour = true // bump and detour share the level+1 VC mapping
	case "detour_safe", "detour_any":
		eligible = func(i int) bool { return !l.diff[i] && l.ok[i] && l.notback[i] }
		detour = true
	default:
		return nil, false
	}
	// The same best-state preference the native preferSafe applies:
	// keep only the dimensions with the lowest state class.
	best := 1 << 30
	for i := 0; i < d; i++ {
		if eligible(i) && l.stateClass[i] < best {
			best = l.stateClass[i]
		}
	}
	var out []int
	for i := 0; i < d; i++ {
		if eligible(i) && l.stateClass[i] == best {
			out = append(out, i)
		}
	}
	return out, detour
}

func (r *RuleRouteC) Route(req routing.Request) []routing.Candidate {
	c := r.prog.Checked
	l := r.linesFor(req)
	env := core.NewMachine(c, r.providerFor(req, l, false, req.Hdr.Phase))
	modeOrd, err := r.decide(req.Node, r.dir, env)
	if err != nil {
		return nil
	}
	mode := c.SymbolSets["modes"].Symbols[modeOrd]
	if mode == "blocked" || mode == "arrived" {
		return nil
	}
	ports, detour := r.portsForMode(mode, l, req.Hdr.Phase)
	var cands []routing.Candidate
	for _, p := range ports {
		outPhase := 1
		if l.up[p] && l.diff[p] {
			outPhase = 0
		}
		vcEnv := core.NewMachine(c, r.providerFor(req, l, detour, outPhase))
		vcOrd, err := r.decide(req.Node, r.vc, vcEnv, c.Symbols[mode])
		if err != nil {
			return nil
		}
		cands = append(cands, routing.Candidate{Port: p, VC: int(vcOrd)})
	}
	return cands
}

var _ routing.Algorithm = (*RuleRouteC)(nil)
