package rulesets

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/rules"
	"repro/internal/topology"
)

// RuleRouteC drives a hypercube network through the compiled ROUTE_C
// rule program: decide_dir's table selects the output mode, decide_vc's
// table the virtual channel — the paper's two interpretations per
// decision. The native instance keeps the distributed safe/unsafe
// states (the Information Units); the per-mode priority selection runs
// in the conclusion processing, modelled here by a small priority
// encoder over the same input lines.
//
// Like RuleNAFTA, decisions run on the dense fast path (compiled index
// closures over a flat input vector) with a transparent fallback to
// the interpreted reference path on a pooled scratch Machine;
// DisableFast pins every decision to the reference path.
type RuleRouteC struct {
	cube   *topology.Hypercube
	native *routing.RouteC
	prog   *Program
	dir    *core.CompiledBase
	vc     *core.CompiledBase
	faults *fault.Set

	// layout and slots are immutable after construction; all mutable
	// per-decision scratch lives in an exec so per-worker decision
	// contexts can own independent copies (see NewDecisionContext).
	layout *core.InputLayout
	exec   routecExec
	slots  cubeSlots

	// ctxMu guards ctxTables, the dense-table clones handed to decision
	// contexts; InvalidateTables retires them with the originals.
	ctxMu     sync.Mutex
	ctxTables []*core.DenseTable

	// DisableFast forces the interpreted reference path (the oracle of
	// the differential tests).
	DisableFast bool

	// Lookups counts rule-table lookups (two per decision).
	Lookups int64
	// OnRuleFired, when non-nil, observes every successful rule-table
	// lookup (deciding node, base name, fired rule index); the flight
	// recorder attaches here.
	OnRuleFired func(node topology.NodeID, base string, rule int)
}

// routecExec bundles the mutable per-decision state of one ROUTE_C
// execution stream: the flat input vector, the dense decision tables
// (whose lookup scratch is per-instance), the pooled reference-path
// Machine, the conclusion-processing line buffers and argument
// scratch, the lookup counter target and the rule-fire observer. The
// adapter itself owns one exec; decision contexts own independent
// copies sharing only immutable compiled state.
type routecExec struct {
	iv          *core.InputVector
	dirD, vcD   *core.DenseTable
	scratch     *core.Machine
	lines       cubeLines
	portScratch []int
	vcArgs      []rules.Value
	vcDargs     []int64
	lookups     *int64
	obs         routing.RuleObserver
}

// cubeSlots holds the input-vector slots of the ROUTE_C decision
// inputs, resolved once at construction (per-dimension vectors keep
// one slot per dimension).
type cubeSlots struct {
	diffb, upb, okl, nbsafe, notback []int
	newState, adaptLoad              []int
	phase, level, takingDetour       int
}

// RouteCDecisionBases lists the rule bases the ROUTE_C adapter
// consults per routing decision — the bases a reconfiguration artifact
// must carry tables for.
var RouteCDecisionBases = []string{"decide_dir", "decide_vc"}

// NewRuleRouteC compiles ROUTE_C for cube h (adaptivity width 2).
func NewRuleRouteC(h *topology.Hypercube) (*RuleRouteC, error) {
	p, err := LoadRouteC(h.Dim, 2)
	if err != nil {
		return nil, err
	}
	return NewRuleRouteCFromProgram(h, p, nil)
}

// NewRuleRouteCFromProgram binds an already analysed ROUTE_C program
// to cube h. tables optionally supplies precompiled decision tables
// (keyed by base name, bound to p.Checked); missing entries are
// compiled in-process. The program's cube dimension must match h.Dim —
// a mismatch surfaces as a slot-resolution error below.
func NewRuleRouteCFromProgram(h *topology.Hypercube, p *Program, tables map[string]*core.CompiledBase) (*RuleRouteC, error) {
	r := &RuleRouteC{
		cube:   h,
		native: routing.NewRouteC(h),
		prog:   p,
		faults: fault.NewSet(),
	}
	r.exec.vcArgs = make([]rules.Value, 1)
	r.exec.vcDargs = make([]int64, 1)
	r.exec.lookups = &r.Lookups
	var err error
	for _, b := range []struct {
		name string
		dst  **core.CompiledBase
	}{
		{RouteCDecisionBases[0], &r.dir},
		{RouteCDecisionBases[1], &r.vc},
	} {
		cb := tables[b.name]
		if cb == nil {
			if cb, err = core.CompileBase(p.Checked, b.name, core.CompileOptions{}); err != nil {
				return nil, err
			}
		}
		*b.dst = cb
	}
	r.layout = core.NewInputLayout(p.Checked)
	r.exec.iv = core.NewInputVector(r.layout)
	r.exec.scratch = core.NewMachine(p.Checked, r.exec.iv.Provider())
	if dt, err := r.dir.CompileDense(r.layout); err == nil {
		r.exec.dirD = dt
	}
	if dt, err := r.vc.CompileDense(r.layout); err == nil {
		r.exec.vcD = dt
	}
	d := h.Dim
	s := &r.slots
	for _, e := range []struct {
		name string
		dst  *[]int
	}{
		{"diffb", &s.diffb}, {"upb", &s.upb}, {"okl", &s.okl},
		{"nbsafe", &s.nbsafe}, {"notback", &s.notback},
		{"new_state", &s.newState}, {"adapt_load", &s.adaptLoad},
	} {
		*e.dst = make([]int, d)
		for i := 0; i < d; i++ {
			if (*e.dst)[i], err = r.layout.SlotOf(e.name, int64(i)); err != nil {
				return nil, err
			}
		}
	}
	for _, e := range []struct {
		name string
		dst  *int
	}{
		{"phase", &s.phase}, {"level", &s.level}, {"taking_detour", &s.takingDetour},
	} {
		if *e.dst, err = r.layout.SlotOf(e.name); err != nil {
			return nil, err
		}
	}
	r.exec.lines = cubeLines{
		diff:       make([]bool, d),
		up:         make([]bool, d),
		ok:         make([]bool, d),
		safe:       make([]bool, d),
		notback:    make([]bool, d),
		stateClass: make([]int, d),
	}
	return r, nil
}

func (r *RuleRouteC) Name() string { return "rule-routec" }
func (r *RuleRouteC) NumVCs() int  { return r.native.NumVCs() }

// FastPathActive reports whether both decision bases compiled to the
// dense fast path.
func (r *RuleRouteC) FastPathActive() bool { return r.exec.dirD != nil && r.exec.vcD != nil }

// DeadlockRegime tags the adapter with the native ROUTE_C discipline:
// rule and native engines are mutually hot-swappable.
func (r *RuleRouteC) DeadlockRegime() string { return r.native.DeadlockRegime() }

// InvalidateTables retires the adapter's dense tables; any later
// fast-path lookup on this instance panics (see RuleNAFTA).
func (r *RuleRouteC) InvalidateTables() {
	for _, dt := range []*core.DenseTable{r.exec.dirD, r.exec.vcD} {
		if dt != nil {
			dt.Invalidate()
		}
	}
	r.ctxMu.Lock()
	for _, dt := range r.ctxTables {
		dt.Invalidate()
	}
	r.ctxMu.Unlock()
}

// Steps is always two interpretations (decide_dir, decide_vc).
func (r *RuleRouteC) Steps(routing.Request) int { return 2 }

func (r *RuleRouteC) NoteHop(req routing.Request, chosen routing.Candidate) {
	r.native.NoteHop(req, chosen)
}

func (r *RuleRouteC) UpdateFaults(f *fault.Set) {
	r.faults = f
	r.native.UpdateFaults(f)
}

// cubeLines holds the per-decision input lines shared by the rule
// tables and the conclusion-processing priority encoder. The slices
// are allocated once per adapter and refilled per decision.
type cubeLines struct {
	diff, up, ok, safe, notback []bool
	// stateClass carries the full neighbour-state ordering for the
	// conclusion-processing priority encoder (0 = safe or the
	// destination, then ounsafe, sunsafe, faulty).
	stateClass []int
}

// fillLines recomputes the input lines of one decision in place.
func (r *RuleRouteC) fillLines(e *routecExec, req routing.Request) {
	d := r.cube.Dim
	l := &e.lines
	states := r.native.States()
	for i := 0; i < d; i++ {
		nb := r.cube.Neighbor(req.Node, i)
		l.diff[i] = req.Node&(1<<i) != req.Hdr.Dst&(1<<i)
		l.up[i] = req.Node&(1<<i) == 0
		l.ok[i] = r.faults.PortUsable(r.cube, req.Node, i)
		l.safe[i] = nb == req.Hdr.Dst || states[nb] == routing.StateSafe
		l.notback[i] = i != req.InPort
		if nb == req.Hdr.Dst {
			l.stateClass[i] = 0
		} else {
			l.stateClass[i] = int(states[nb])
		}
	}
}

// fillInputs loads the decision's input lines into the flat input
// vector. phase and taking_detour vary between the dir decision and
// the per-port vc decisions; Route re-sets just those two slots.
func (r *RuleRouteC) fillInputs(e *routecExec, req routing.Request) {
	iv, s, l := e.iv, &r.slots, &e.lines
	iv.Begin()
	safeOrd := r.prog.Checked.Symbols["safe"].I
	for i := 0; i < r.cube.Dim; i++ {
		iv.SetBool(s.diffb[i], l.diff[i])
		iv.SetBool(s.upb[i], l.up[i])
		iv.SetBool(s.okl[i], l.ok[i])
		iv.SetBool(s.nbsafe[i], l.safe[i])
		iv.SetBool(s.notback[i], l.notback[i])
		iv.Set(s.newState[i], safeOrd)
		iv.Set(s.adaptLoad[i], 0)
	}
	iv.Set(s.phase, int64(req.Hdr.Phase))
	iv.Set(s.level, int64(req.Hdr.DetourLevel))
	iv.SetBool(s.takingDetour, false)
}

// decide runs one compiled table over the current input vector and
// returns the RETURN value ordinal. Dense fast path first; the
// interpreted reference path serves fallbacks and DisableFast. Counter
// and hook semantics are identical on both paths.
func (r *RuleRouteC) decide(e *routecExec, node topology.NodeID, cb *core.CompiledBase, dt *core.DenseTable,
	args []rules.Value, dargs []int64) (int64, error) {
	*e.lookups++
	if dt != nil && !r.DisableFast {
		if idx, ok := dt.Lookup(e.iv, dargs...); ok {
			if idx >= cb.RuleCount {
				return 0, fmt.Errorf("rule-routec: %s selected no rule", cb.Base)
			}
			r.fire(e, node, cb.Base, idx)
			if ret, rok := dt.Return(idx); rok {
				return ret.I, nil
			}
			eff, err := r.prog.Checked.FireRule(cb.Base, idx, args, e.scratch)
			if err != nil || eff.Return == nil {
				return 0, fmt.Errorf("rule-routec: %s rule %d has no value (%v)", cb.Base, idx, err)
			}
			return eff.Return.I, nil
		}
		// Outside the dense regime: repeat on the reference path.
	}
	m := e.scratch
	m.Reset()
	idx, err := cb.LookupRule(args, m)
	if err != nil {
		return 0, err
	}
	if idx >= cb.RuleCount {
		return 0, fmt.Errorf("rule-routec: %s selected no rule", cb.Base)
	}
	r.fire(e, node, cb.Base, idx)
	eff, err := r.prog.Checked.FireRule(cb.Base, idx, args, m)
	if err != nil || eff.Return == nil {
		return 0, fmt.Errorf("rule-routec: %s rule %d has no value (%v)", cb.Base, idx, err)
	}
	return eff.Return.I, nil
}

// fire reports one rule firing through the exec's observer when the
// exec belongs to a decision context, else through the adapter hook.
func (r *RuleRouteC) fire(e *routecExec, node topology.NodeID, base string, rule int) {
	if e.obs != nil {
		e.obs(r, node, base, rule)
		return
	}
	if r.OnRuleFired != nil {
		r.OnRuleFired(node, base, rule)
	}
}

// FireRuleObserver replays a deferred rule-fire observation through the
// hook currently installed on the adapter (routing.RuleFirer).
func (r *RuleRouteC) FireRuleObserver(node topology.NodeID, base string, rule int) {
	if r.OnRuleFired != nil {
		r.OnRuleFired(node, base, rule)
	}
}

// portsForMode is the conclusion-processing priority logic: expand a
// decide_dir mode back into the admissible ports, lowest dimension
// first. The returned slice aliases adapter scratch storage.
func (r *RuleRouteC) portsForMode(e *routecExec, mode string) ([]int, bool) {
	d := r.cube.Dim
	l := &e.lines
	var eligible func(i int) bool
	detour := false
	switch mode {
	case "up_safe", "up_any":
		eligible = func(i int) bool { return l.diff[i] && l.up[i] && l.ok[i] && l.notback[i] }
	case "down_safe", "down_any":
		eligible = func(i int) bool { return l.diff[i] && !l.up[i] && l.ok[i] && l.notback[i] }
	case "bump_safe", "bump_any":
		// Minimal ascending hops that claim the next level's channel
		// (a descending-entry level ran out of down work).
		eligible = func(i int) bool { return l.diff[i] && l.up[i] && l.ok[i] && l.notback[i] }
		detour = true // bump and detour share the level+1 VC mapping
	case "detour_safe", "detour_any":
		eligible = func(i int) bool { return !l.diff[i] && l.ok[i] && l.notback[i] }
		detour = true
	default:
		return nil, false
	}
	// The same best-state preference the native preferSafe applies:
	// keep only the dimensions with the lowest state class.
	best := 1 << 30
	for i := 0; i < d; i++ {
		if eligible(i) && l.stateClass[i] < best {
			best = l.stateClass[i]
		}
	}
	out := e.portScratch[:0]
	for i := 0; i < d; i++ {
		if eligible(i) && l.stateClass[i] == best {
			out = append(out, i)
		}
	}
	e.portScratch = out[:0]
	return out, detour
}

func (r *RuleRouteC) Route(req routing.Request) []routing.Candidate {
	return r.RouteAppend(req, nil)
}

// RouteAppend is the allocation-free form of Route (BufferedAlgorithm).
func (r *RuleRouteC) RouteAppend(req routing.Request, buf []routing.Candidate) []routing.Candidate {
	return r.routeAppend(&r.exec, req, buf)
}

func (r *RuleRouteC) routeAppend(e *routecExec, req routing.Request, buf []routing.Candidate) []routing.Candidate {
	c := r.prog.Checked
	r.fillLines(e, req)
	r.fillInputs(e, req)
	modeOrd, err := r.decide(e, req.Node, r.dir, e.dirD, nil, nil)
	if err != nil {
		return buf
	}
	mode := c.SymbolSets["modes"].Symbols[modeOrd]
	if mode == "blocked" || mode == "arrived" {
		return buf
	}
	ports, detour := r.portsForMode(e, mode)
	start := len(buf)
	for _, p := range ports {
		outPhase := 1
		if e.lines.up[p] && e.lines.diff[p] {
			outPhase = 0
		}
		e.iv.Set(r.slots.phase, int64(outPhase))
		e.iv.SetBool(r.slots.takingDetour, detour)
		e.vcArgs[0] = c.Symbols[mode]
		e.vcDargs[0] = c.Symbols[mode].I
		vcOrd, err := r.decide(e, req.Node, r.vc, e.vcD, e.vcArgs, e.vcDargs)
		if err != nil {
			return buf[:start]
		}
		buf = append(buf, routing.Candidate{Port: p, VC: int(vcOrd)})
	}
	return buf
}

// NewDecisionContext returns an independent decision context sharing
// the adapter's compiled state and fault knowledge but owning all
// per-decision scratch (routing.DecisionContexter). Rule firings are
// reported through obs; lookup counts accumulate locally until
// FlushLookups folds them into the adapter.
func (r *RuleRouteC) NewDecisionContext(obs routing.RuleObserver) routing.Algorithm {
	d := r.cube.Dim
	c := &routecContext{parent: r}
	c.exec = routecExec{
		iv:      core.NewInputVector(r.layout),
		vcArgs:  make([]rules.Value, 1),
		vcDargs: make([]int64, 1),
		lines: cubeLines{
			diff:       make([]bool, d),
			up:         make([]bool, d),
			ok:         make([]bool, d),
			safe:       make([]bool, d),
			notback:    make([]bool, d),
			stateClass: make([]int, d),
		},
		lookups: &c.count,
		obs:     obs,
	}
	c.exec.scratch = core.NewMachine(r.prog.Checked, c.exec.iv.Provider())
	r.ctxMu.Lock()
	if r.exec.dirD != nil {
		c.exec.dirD = r.exec.dirD.Clone()
		r.ctxTables = append(r.ctxTables, c.exec.dirD)
	}
	if r.exec.vcD != nil {
		c.exec.vcD = r.exec.vcD.Clone()
		r.ctxTables = append(r.ctxTables, c.exec.vcD)
	}
	r.ctxMu.Unlock()
	return c
}

// routecContext is a per-worker decision context of a RuleRouteC
// adapter. It forwards immutable queries to the parent and routes
// through its own exec.
type routecContext struct {
	parent *RuleRouteC
	exec   routecExec
	count  int64
}

func (c *routecContext) Name() string { return c.parent.Name() }
func (c *routecContext) NumVCs() int  { return c.parent.NumVCs() }

func (c *routecContext) Steps(req routing.Request) int { return c.parent.Steps(req) }

func (c *routecContext) NoteHop(req routing.Request, chosen routing.Candidate) {
	c.parent.NoteHop(req, chosen)
}

func (c *routecContext) UpdateFaults(*fault.Set) {
	panic("rulesets: decision contexts share the parent's fault state; call UpdateFaults on the parent adapter")
}

func (c *routecContext) Route(req routing.Request) []routing.Candidate {
	return c.RouteAppend(req, nil)
}

func (c *routecContext) RouteAppend(req routing.Request, buf []routing.Candidate) []routing.Candidate {
	return c.parent.routeAppend(&c.exec, req, buf)
}

// FlushLookups folds the context's local lookup count into the parent
// adapter's public counter (routing.LookupFlusher; called from the
// network's serial commit phase).
func (c *routecContext) FlushLookups() {
	c.parent.Lookups += c.count
	c.count = 0
}

var _ routing.Algorithm = (*RuleRouteC)(nil)
var _ routing.BufferedAlgorithm = (*RuleRouteC)(nil)
var _ routing.DecisionContexter = (*RuleRouteC)(nil)
var _ routing.RuleFirer = (*RuleRouteC)(nil)
var _ routing.BufferedAlgorithm = (*routecContext)(nil)
var _ routing.LookupFlusher = (*routecContext)(nil)
