package rulesets

import (
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/rules"
	"repro/internal/topology"
)

// RuleNAFTA is a routing.Algorithm whose routing decisions are made by
// the compiled NAFTA rule program: the ARON tables of
// incoming_message, in_message_ft and test_exception select the rule,
// and the conclusion processing executes it. The native NAFTA instance
// supplies the distributed fault state (it plays the role of the
// router's Information Units), while every per-message decision flows
// through the rule tables — the paper's execution model.
//
// Decisions run on the compiled dense fast path (core.DenseTable over
// a flat core.InputVector, no allocation): the table index is computed
// by compiled closures and the folded RETURN value comes straight from
// the table. Decisions that leave the pure table regime fall back
// transparently to the interpreted reference path on a pooled scratch
// Machine; DisableFast forces that path everywhere (the differential
// and fuzz tests drive both and assert identical decisions).
type RuleNAFTA struct {
	mesh   *topology.Mesh
	native *routing.NAFTA
	prog   *Program
	ff     *core.CompiledBase // incoming_message (fault-free path)
	ft     *core.CompiledBase // in_message_ft
	ex     *core.CompiledBase // test_exception
	loads  routing.LoadView
	faults *fault.Set

	// Fast-path state: the shared input layout, the resolved signal
	// slots and the constant argument list are immutable after
	// construction; every mutable per-decision piece — input vector,
	// dense tables (each carries lookup scratch), pooled slow-path
	// machine — lives in an exec so per-worker decision contexts can
	// own independent copies (see NewDecisionContext).
	layout *core.InputLayout
	exec   naftaExec
	slots  naftaSlots
	args   []rules.Value // constant [invc=0], reused across decisions

	// ctxMu guards ctxTables, the dense-table clones handed to decision
	// contexts; InvalidateTables retires them together with the
	// originals so a swapped-out engine's workers fail loudly too.
	ctxMu     sync.Mutex
	ctxTables []*core.DenseTable

	// DisableFast forces every decision onto the interpreted reference
	// path (the oracle the differential tests compare against).
	DisableFast bool

	// Lookups counts table lookups (interpretation steps actually
	// executed).
	Lookups int64
	// OnRuleFired, when non-nil, observes every successful rule-table
	// lookup (deciding node, base name, fired rule index). cmd/ftsim
	// -trace wires the flight recorder here; the disabled path is one
	// nil-check per lookup.
	OnRuleFired func(node topology.NodeID, base string, rule int)
}

// naftaSlots holds the input-vector slots of every signal the decision
// bases read, resolved once at construction.
type naftaSlots struct {
	dxsign, dysign, invnet, lastdir, msglen, budget, vlight int
	avail, avfault, misok                                   [topology.MeshPorts]int
}

// naftaExec bundles the mutable per-decision state of one execution
// lane: the flat input vector, the dense tables (which carry lookup
// scratch and are therefore per-lane), the pooled interpreter machine
// bound to the vector, the lookup counter target and the optional
// deferred rule-fire observer. The adapter itself owns one exec for
// the serial path; each decision context owns another.
type naftaExec struct {
	iv            *core.InputVector
	ffD, ftD, exD *core.DenseTable
	scratch       *core.Machine
	lookups       *int64
	obs           routing.RuleObserver
}

// NAFTADecisionBases lists the rule bases the NAFTA adapter consults
// per routing decision — the bases a reconfiguration artifact must
// carry tables for.
var NAFTADecisionBases = []string{"incoming_message", "in_message_ft", "test_exception"}

// NewRuleNAFTA compiles the NAFTA program and binds it to mesh m.
func NewRuleNAFTA(m *topology.Mesh) (*RuleNAFTA, error) {
	p, err := LoadNAFTA()
	if err != nil {
		return nil, err
	}
	return NewRuleNAFTAFromProgram(m, p, nil)
}

// NewRuleNAFTAFromProgram binds an already analysed NAFTA program to
// mesh m. tables optionally supplies precompiled decision tables
// (keyed by base name, e.g. loaded from a reconfiguration artifact);
// they must be bound to p.Checked. Missing entries are compiled
// in-process.
func NewRuleNAFTAFromProgram(m *topology.Mesh, p *Program, tables map[string]*core.CompiledBase) (*RuleNAFTA, error) {
	r := &RuleNAFTA{
		mesh:   m,
		native: routing.NewNAFTA(m),
		prog:   p,
		faults: fault.NewSet(),
		args:   []rules.Value{rules.IntVal(0)},
	}
	var err error
	for _, b := range []struct {
		name string
		dst  **core.CompiledBase
	}{
		{NAFTADecisionBases[0], &r.ff},
		{NAFTADecisionBases[1], &r.ft},
		{NAFTADecisionBases[2], &r.ex},
	} {
		cb := tables[b.name]
		if cb == nil {
			if cb, err = core.CompileBase(p.Checked, b.name, core.CompileOptions{}); err != nil {
				return nil, err
			}
		}
		*b.dst = cb
	}
	r.layout = core.NewInputLayout(p.Checked)
	r.exec.iv = core.NewInputVector(r.layout)
	r.exec.scratch = core.NewMachine(p.Checked, r.exec.iv.Provider())
	r.exec.lookups = &r.Lookups
	// Dense compilation is best-effort: a nil table keeps the base on
	// the interpreter (same decisions, just slower).
	for _, b := range []struct {
		cb   *core.CompiledBase
		fast **core.DenseTable
	}{{r.ff, &r.exec.ffD}, {r.ft, &r.exec.ftD}, {r.ex, &r.exec.exD}} {
		if dt, err := b.cb.CompileDense(r.layout); err == nil {
			*b.fast = dt
		}
	}
	s := &r.slots
	for _, e := range []struct {
		name string
		dst  *int
	}{
		{"dxsign", &s.dxsign}, {"dysign", &s.dysign}, {"invnet", &s.invnet},
		{"lastdir", &s.lastdir}, {"msglen", &s.msglen}, {"budget", &s.budget},
		{"vlight", &s.vlight},
	} {
		if *e.dst, err = r.layout.SlotOf(e.name); err != nil {
			return nil, err
		}
	}
	for p := 0; p < topology.MeshPorts; p++ {
		if s.avail[p], err = r.layout.SlotOf("avail", int64(p)); err != nil {
			return nil, err
		}
		if s.avfault[p], err = r.layout.SlotOf("avfault", int64(p)); err != nil {
			return nil, err
		}
		if s.misok[p], err = r.layout.SlotOf("misok", int64(p)); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// AttachLoads wires the network's load view into the rule inputs (the
// buffer-exploitation signals of the Information Units). Without it
// the adaptivity tie-break defaults to the horizontal output.
func (r *RuleNAFTA) AttachLoads(v routing.LoadView) { r.loads = v }

// DeadlockRegime tags the adapter with the native NAFTA discipline:
// the rule tables implement the same virtual-network scheme, so rule
// and native engines are mutually hot-swappable.
func (r *RuleNAFTA) DeadlockRegime() string { return r.native.DeadlockRegime() }

// InvalidateTables retires the adapter's dense tables — the serial
// lane's and every clone handed to a decision context. Online
// reconfiguration calls this when the adapter's epoch is retired; any
// later fast-path lookup on this instance panics instead of routing on
// a dead table generation.
func (r *RuleNAFTA) InvalidateTables() {
	for _, dt := range []*core.DenseTable{r.exec.ffD, r.exec.ftD, r.exec.exD} {
		if dt != nil {
			dt.Invalidate()
		}
	}
	r.ctxMu.Lock()
	defer r.ctxMu.Unlock()
	for _, dt := range r.ctxTables {
		dt.Invalidate()
	}
}

// FastPathActive reports whether all three decision bases compiled to
// the dense fast path.
func (r *RuleNAFTA) FastPathActive() bool {
	return r.exec.ffD != nil && r.exec.ftD != nil && r.exec.exD != nil
}

func (r *RuleNAFTA) Name() string { return "rule-nafta" }
func (r *RuleNAFTA) NumVCs() int  { return r.native.NumVCs() }

func (r *RuleNAFTA) Steps(req routing.Request) int { return r.native.Steps(req) }

func (r *RuleNAFTA) NoteHop(req routing.Request, chosen routing.Candidate) {
	r.native.NoteHop(req, chosen)
}

func (r *RuleNAFTA) UpdateFaults(f *fault.Set) {
	r.faults = f
	r.native.UpdateFaults(f)
}

// fillInputs loads the rule-program input lines of one decision into
// the exec's flat input vector (signal slots were resolved at
// construction — no map, no key building).
func (r *RuleNAFTA) fillInputs(e *naftaExec, req routing.Request) {
	facts := r.native.PortFacts(req)
	cx, cy := r.mesh.XY(req.Node)
	dx, dy := r.mesh.XY(req.Hdr.Dst)
	vnet := r.native.VNetOf(req)
	lastdir := 4
	if req.InPort != routing.InjectionPort {
		lastdir = topology.OppositeMeshPort(req.InPort)
	}
	sign := func(v int) int64 { // signs = {neg, zero, pos}
		switch {
		case v < 0:
			return 0
		case v == 0:
			return 1
		default:
			return 2
		}
	}
	load := func(p int) int {
		if r.loads == nil {
			return 0
		}
		return r.loads.QueuedFlits(req.Node, p, 0)
	}
	vPort, hPort := -1, -1
	if dy > cy {
		vPort = topology.North
	} else if dy < cy {
		vPort = topology.South
	}
	if dx > cx {
		hPort = topology.East
	} else if dx < cx {
		hPort = topology.West
	}
	vlight := false
	if vPort >= 0 && hPort >= 0 {
		vlight = load(vPort) < load(hPort)
	}
	msglen := req.Hdr.Length
	if msglen > 31 {
		msglen = 31
	}
	iv, s := e.iv, &r.slots
	iv.Begin()
	iv.Set(s.dxsign, sign(dx-cx))
	iv.Set(s.dysign, sign(dy-cy))
	iv.Set(s.invnet, int64(vnet))
	iv.Set(s.lastdir, int64(lastdir))
	iv.Set(s.msglen, int64(msglen))
	iv.SetBool(s.budget, req.Hdr.Misroutes < 4*(r.mesh.W+r.mesh.H))
	iv.SetBool(s.vlight, vlight)
	for p := 0; p < topology.MeshPorts; p++ {
		iv.SetBool(s.avail[p], facts[p].Usable)
		iv.SetBool(s.avfault[p], facts[p].Usable && facts[p].Sideways && facts[p].EntryMinimal)
		iv.SetBool(s.misok[p], facts[p].Usable && facts[p].Sideways && facts[p].EntryMisroute)
	}
}

// fire reports one successful rule selection: a decision context
// defers it through its observer (replayed later in serial order), the
// serial lane calls the adapter's hook directly.
func (r *RuleNAFTA) fire(e *naftaExec, node topology.NodeID, base string, rule int) {
	if e.obs != nil {
		e.obs(r, node, base, rule)
		return
	}
	if r.OnRuleFired != nil {
		r.OnRuleFired(node, base, rule)
	}
}

// FireRuleObserver forwards a deferred rule-fire observation to the
// hook currently installed (routing.RuleFirer; the parallel stepper
// replays deferred observations through it in serial router order).
func (r *RuleNAFTA) FireRuleObserver(node topology.NodeID, base string, rule int) {
	if r.OnRuleFired != nil {
		r.OnRuleFired(node, base, rule)
	}
}

// decide runs one rule base over the exec's input vector: dense table
// first, interpreted reference path when the fast path is unavailable
// or the decision leaves the pure table regime. Counter and hook
// semantics are identical on both paths: the lookup counter increments
// once per decision, the fire hook observes exactly when a rule (not
// the "no rule" conclusion) is selected.
func (r *RuleNAFTA) decide(e *naftaExec, req routing.Request, cb *core.CompiledBase, dt *core.DenseTable) (int, bool) {
	*e.lookups++
	if dt != nil && !r.DisableFast {
		if idx, ok := dt.Lookup(e.iv, 0); ok {
			if idx >= cb.RuleCount {
				return 0, false
			}
			r.fire(e, req.Node, cb.Base, idx)
			if ret, rok := dt.Return(idx); rok {
				return int(ret.I), true
			}
			// Conclusion needs the interpreter (no folded RETURN):
			// fire the already-selected rule there.
			eff, err := r.prog.Checked.FireRule(cb.Base, idx, r.args, e.scratch)
			if err != nil || eff.Return == nil {
				return 0, false
			}
			return int(eff.Return.I), true
		}
		// The lookup left the dense regime: repeat the whole decision
		// on the reference path.
	}
	m := e.scratch
	m.Reset()
	idx, err := cb.LookupRule(r.args, m)
	if err != nil || idx >= cb.RuleCount {
		return 0, false
	}
	r.fire(e, req.Node, cb.Base, idx)
	eff, err := r.prog.Checked.FireRule(cb.Base, idx, r.args, m)
	if err != nil || eff.Return == nil {
		return 0, false
	}
	return int(eff.Return.I), true
}

// Route performs the decision through the compiled rule tables: the
// table lookup selects the applicable rule and the conclusion is
// executed for its RETURN value. An empty result means unroutable.
func (r *RuleNAFTA) Route(req routing.Request) []routing.Candidate {
	return r.RouteAppend(req, nil)
}

// RouteAppend is the allocation-free form of Route (BufferedAlgorithm).
func (r *RuleNAFTA) RouteAppend(req routing.Request, buf []routing.Candidate) []routing.Candidate {
	return r.routeAppend(&r.exec, req, buf)
}

func (r *RuleNAFTA) routeAppend(e *naftaExec, req routing.Request, buf []routing.Candidate) []routing.Candidate {
	r.fillInputs(e, req)
	primary, primaryD := r.ft, e.ftD
	if r.faults.Empty() {
		primary, primaryD = r.ff, e.ffD
	}
	if port, ok := r.decide(e, req, primary, primaryD); ok {
		return append(buf, routing.Candidate{Port: port, VC: r.native.VNetOf(req)})
	}
	if port, ok := r.decide(e, req, r.ex, e.exD); ok {
		return append(buf, routing.Candidate{Port: port, VC: r.native.VNetOf(req)})
	}
	return buf
}

// NewDecisionContext hands out one independent decision lane for a
// parallel-stepper worker (routing.DecisionContexter): a fresh input
// vector and interpreter machine over the shared layout and program,
// dense-table clones with private lookup scratch, a local lookup
// counter (flushed into Lookups from the serial commit phase) and the
// deferred rule-fire observer. The compiled tables, the native fault
// state and the load view stay shared — they are read-only during
// compute phases.
func (r *RuleNAFTA) NewDecisionContext(obs routing.RuleObserver) routing.Algorithm {
	c := &naftaContext{parent: r}
	c.exec = naftaExec{
		iv:      core.NewInputVector(r.layout),
		lookups: &c.count,
		obs:     obs,
	}
	c.exec.scratch = core.NewMachine(r.prog.Checked, c.exec.iv.Provider())
	r.ctxMu.Lock()
	defer r.ctxMu.Unlock()
	for _, t := range []struct {
		src *core.DenseTable
		dst **core.DenseTable
	}{{r.exec.ffD, &c.exec.ffD}, {r.exec.ftD, &c.exec.ftD}, {r.exec.exD, &c.exec.exD}} {
		if t.src != nil {
			cl := t.src.Clone()
			*t.dst = cl
			r.ctxTables = append(r.ctxTables, cl)
		}
	}
	return c
}

// naftaContext is one worker's decision lane over a shared RuleNAFTA.
type naftaContext struct {
	parent *RuleNAFTA
	exec   naftaExec
	count  int64
}

func (c *naftaContext) Name() string                  { return c.parent.Name() }
func (c *naftaContext) NumVCs() int                   { return c.parent.NumVCs() }
func (c *naftaContext) Steps(req routing.Request) int { return c.parent.Steps(req) }
func (c *naftaContext) NoteHop(req routing.Request, chosen routing.Candidate) {
	c.parent.NoteHop(req, chosen)
}
func (c *naftaContext) UpdateFaults(*fault.Set) {
	panic("rulesets: decision contexts share the parent's fault state; call UpdateFaults on the parent engine")
}
func (c *naftaContext) Route(req routing.Request) []routing.Candidate {
	return c.RouteAppend(req, nil)
}
func (c *naftaContext) RouteAppend(req routing.Request, buf []routing.Candidate) []routing.Candidate {
	return c.parent.routeAppend(&c.exec, req, buf)
}

// FlushLookups folds the context's lookup count into the parent's
// public counter (routing.LookupFlusher; called single-threaded).
func (c *naftaContext) FlushLookups() {
	c.parent.Lookups += c.count
	c.count = 0
}

var _ routing.Algorithm = (*RuleNAFTA)(nil)
var _ routing.BufferedAlgorithm = (*RuleNAFTA)(nil)
var _ routing.DecisionContexter = (*RuleNAFTA)(nil)
var _ routing.RuleFirer = (*RuleNAFTA)(nil)
var _ routing.BufferedAlgorithm = (*naftaContext)(nil)
var _ routing.LookupFlusher = (*naftaContext)(nil)
