package rulesets

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/rules"
	"repro/internal/topology"
)

// RuleNAFTA is a routing.Algorithm whose routing decisions are made by
// the compiled NAFTA rule program: the ARON tables of
// incoming_message, in_message_ft and test_exception select the rule,
// and the conclusion processing executes it. The native NAFTA instance
// supplies the distributed fault state (it plays the role of the
// router's Information Units), while every per-message decision flows
// through the rule interpreter — the paper's execution model.
type RuleNAFTA struct {
	mesh   *topology.Mesh
	native *routing.NAFTA
	prog   *Program
	ff     *core.CompiledBase // incoming_message (fault-free path)
	ft     *core.CompiledBase // in_message_ft
	ex     *core.CompiledBase // test_exception
	loads  routing.LoadView
	faults *fault.Set
	// Lookups counts table lookups (interpretation steps actually
	// executed).
	Lookups int64
	// OnRuleFired, when non-nil, observes every successful rule-table
	// lookup (deciding node, base name, fired rule index). cmd/ftsim
	// -trace wires the flight recorder here; the disabled path is one
	// nil-check per lookup.
	OnRuleFired func(node topology.NodeID, base string, rule int)
}

// NewRuleNAFTA compiles the NAFTA program and binds it to mesh m.
func NewRuleNAFTA(m *topology.Mesh) (*RuleNAFTA, error) {
	p, err := LoadNAFTA()
	if err != nil {
		return nil, err
	}
	r := &RuleNAFTA{
		mesh:   m,
		native: routing.NewNAFTA(m),
		prog:   p,
		faults: fault.NewSet(),
	}
	for _, b := range []struct {
		name string
		dst  **core.CompiledBase
	}{
		{"incoming_message", &r.ff},
		{"in_message_ft", &r.ft},
		{"test_exception", &r.ex},
	} {
		cb, err := core.CompileBase(p.Checked, b.name, core.CompileOptions{})
		if err != nil {
			return nil, err
		}
		*b.dst = cb
	}
	return r, nil
}

// AttachLoads wires the network's load view into the rule inputs (the
// buffer-exploitation signals of the Information Units). Without it
// the adaptivity tie-break defaults to the horizontal output.
func (r *RuleNAFTA) AttachLoads(v routing.LoadView) { r.loads = v }

func (r *RuleNAFTA) Name() string { return "rule-nafta" }
func (r *RuleNAFTA) NumVCs() int  { return r.native.NumVCs() }

func (r *RuleNAFTA) Steps(req routing.Request) int { return r.native.Steps(req) }

func (r *RuleNAFTA) NoteHop(req routing.Request, chosen routing.Candidate) {
	r.native.NoteHop(req, chosen)
}

func (r *RuleNAFTA) UpdateFaults(f *fault.Set) {
	r.faults = f
	r.native.UpdateFaults(f)
}

// inputsFor builds the rule-program input environment of one decision.
func (r *RuleNAFTA) inputsFor(req routing.Request) core.InputProvider {
	c := r.prog.Checked
	facts := r.native.PortFacts(req)
	cx, cy := r.mesh.XY(req.Node)
	dx, dy := r.mesh.XY(req.Hdr.Dst)
	vnet := r.native.VNetOf(req)
	lastdir := 4
	if req.InPort != routing.InjectionPort {
		lastdir = topology.OppositeMeshPort(req.InPort)
	}
	signs := c.SymbolSets["signs"]
	sign := func(v int) rules.Value {
		switch {
		case v < 0:
			return rules.SymVal(signs, 0)
		case v == 0:
			return rules.SymVal(signs, 1)
		default:
			return rules.SymVal(signs, 2)
		}
	}
	bit := func(b bool) rules.Value {
		if b {
			return rules.Value{T: rules.IntType(0, 1), I: 1}
		}
		return rules.Value{T: rules.IntType(0, 1), I: 0}
	}
	load := func(p int) int {
		if r.loads == nil {
			return 0
		}
		return r.loads.QueuedFlits(req.Node, p, 0)
	}
	vPort, hPort := -1, -1
	if dy > cy {
		vPort = topology.North
	} else if dy < cy {
		vPort = topology.South
	}
	if dx > cx {
		hPort = topology.East
	} else if dx < cx {
		hPort = topology.West
	}
	vlight := false
	if vPort >= 0 && hPort >= 0 {
		vlight = load(vPort) < load(hPort)
	}
	msglen := req.Hdr.Length
	if msglen > 31 {
		msglen = 31
	}
	vals := map[string]rules.Value{
		"dxsign":  sign(dx - cx),
		"dysign":  sign(dy - cy),
		"invnet":  {T: rules.IntType(0, 1), I: int64(vnet)},
		"lastdir": {T: rules.IntType(0, 4), I: int64(lastdir)},
		"msglen":  {T: rules.IntType(0, 31), I: int64(msglen)},
		"budget":  bit(req.Hdr.Misroutes < 4*(r.mesh.W+r.mesh.H)),
		"vlight":  bit(vlight),
	}
	for p := 0; p < topology.MeshPorts; p++ {
		vals[fmt.Sprintf("avail/%d", p)] = bit(facts[p].Usable)
		vals[fmt.Sprintf("avfault/%d", p)] = bit(facts[p].Usable && facts[p].Sideways && facts[p].EntryMinimal)
		vals[fmt.Sprintf("misok/%d", p)] = bit(facts[p].Usable && facts[p].Sideways && facts[p].EntryMisroute)
	}
	return func(name string, idx []int64) (rules.Value, error) {
		k := name
		for _, i := range idx {
			k += fmt.Sprintf("/%d", i)
		}
		v, ok := vals[k]
		if !ok {
			return rules.Value{}, fmt.Errorf("rule-nafta: unset input %s", k)
		}
		return v, nil
	}
}

// Route performs the decision through the compiled rule tables: the
// table lookup selects the applicable rule and the conclusion is
// executed for its RETURN value. An empty result means unroutable.
func (r *RuleNAFTA) Route(req routing.Request) []routing.Candidate {
	c := r.prog.Checked
	env := core.NewMachine(c, r.inputsFor(req))
	args := []rules.Value{rules.IntVal(0)}
	decide := func(cb *core.CompiledBase) (int, bool) {
		r.Lookups++
		idx, err := cb.LookupRule(args, env)
		if err != nil || idx >= cb.RuleCount {
			return 0, false
		}
		if r.OnRuleFired != nil {
			r.OnRuleFired(req.Node, cb.Base, idx)
		}
		eff, err := c.FireRule(cb.Base, idx, args, env)
		if err != nil || eff.Return == nil {
			return 0, false
		}
		return int(eff.Return.I), true
	}
	primary := r.ft
	if r.faults.Empty() {
		primary = r.ff
	}
	if port, ok := decide(primary); ok {
		return []routing.Candidate{{Port: port, VC: r.native.VNetOf(req)}}
	}
	if port, ok := decide(r.ex); ok {
		return []routing.Candidate{{Port: port, VC: r.native.VNetOf(req)}}
	}
	return nil
}

var _ routing.Algorithm = (*RuleNAFTA)(nil)
