package rulesets

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
)

// The rule-driven router must actually work as the control unit of the
// wormhole network: same scenario as the native NAFTA, full delivery,
// no deadlock.
func TestRuleNAFTADrivesNetwork(t *testing.T) {
	m := topology.NewMesh(8, 8)
	alg, err := NewRuleNAFTA(m)
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(network.Config{Graph: m, Algorithm: alg})
	alg.AttachLoads(net)

	f := fault.NewSet()
	f.FailNode(m.Node(3, 3))
	f.FailNode(m.Node(4, 3))
	net.ApplyFaults(f)

	rng := rand.New(rand.NewSource(8))
	want := 0
	for i := 0; i < 250; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes()))
		if src == dst || f.NodeFaulty(src) || f.NodeFaulty(dst) {
			continue
		}
		net.Inject(src, dst, 6)
		want++
	}
	if !net.Drain(100000) {
		t.Fatalf("network did not drain (inflight %d)", net.InFlight())
	}
	st := net.Stats()
	if st.DeadlockSuspected {
		t.Fatal("deadlock suspected")
	}
	if float64(st.Delivered) < 0.98*float64(want) {
		t.Fatalf("rule-driven NAFTA delivered %d of %d", st.Delivered, want)
	}
	if alg.Lookups == 0 {
		t.Fatal("decisions must go through the rule tables")
	}
	if st.MisroutesSum == 0 {
		t.Fatal("expected misroutes around the fault block")
	}
}

// Fault-free, the rule-driven router must match the native NAFTA
// network statistics exactly on an identical deterministic workload
// with the FirstFit selector (the adapter returns single candidates,
// so selector influence must be removed from the native run for a
// strict comparison... the adaptivity inputs still come from the live
// load view, which both runs share deterministically).
func TestRuleNAFTAMatchesNativeFaultFree(t *testing.T) {
	m := topology.NewMesh(6, 6)
	run := func(mk func() (routing.Algorithm, func(routing.LoadView))) network.Stats {
		alg, attach := mk()
		net := network.New(network.Config{Graph: m, Algorithm: alg, Selector: routing.FirstFit{}})
		if attach != nil {
			attach(net)
		}
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 200; i++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes()))
			if src == dst {
				continue
			}
			net.Inject(src, dst, 4)
		}
		if !net.Drain(100000) {
			t.Fatal("drain failed")
		}
		return net.Stats()
	}
	native := run(func() (routing.Algorithm, func(routing.LoadView)) {
		return routing.NewNAFTA(m), nil
	})
	ruled := run(func() (routing.Algorithm, func(routing.LoadView)) {
		alg, err := NewRuleNAFTA(m)
		if err != nil {
			t.Fatal(err)
		}
		return alg, alg.AttachLoads
	})
	if native.Delivered != ruled.Delivered || native.Dropped != ruled.Dropped {
		t.Fatalf("delivery mismatch: native %+v vs ruled %+v", native, ruled)
	}
	// The rule path picks a single candidate per decision (the
	// adaptivity choice is folded into the rules), the native run
	// offers candidate sets to FirstFit; both must deliver everything
	// with similar path lengths.
	if ruled.HopsSum > native.HopsSum*3/2 {
		t.Fatalf("rule-driven paths much longer: %d vs %d hops", ruled.HopsSum, native.HopsSum)
	}
}

// The ROUTE_C rule tables must drive a faulty hypercube network with
// full delivery in the guarantee regime.
func TestRuleRouteCDrivesNetwork(t *testing.T) {
	h := topology.NewHypercube(5)
	alg, err := NewRuleRouteC(h)
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(network.Config{Graph: h, Algorithm: alg})
	f, err := fault.Random(h, fault.RandomOptions{Nodes: 4, Seed: 2, KeepConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	net.ApplyFaults(f)
	rng := rand.New(rand.NewSource(12))
	want := 0
	for i := 0; i < 300; i++ {
		src := topology.NodeID(rng.Intn(h.Nodes()))
		dst := topology.NodeID(rng.Intn(h.Nodes()))
		if src == dst || f.NodeFaulty(src) || f.NodeFaulty(dst) {
			continue
		}
		net.Inject(src, dst, 6)
		want++
	}
	if !net.Drain(100000) {
		t.Fatalf("network did not drain (inflight %d)", net.InFlight())
	}
	st := net.Stats()
	if st.DeadlockSuspected {
		t.Fatal("deadlock suspected")
	}
	if st.Delivered != int64(want) {
		t.Fatalf("rule-driven ROUTE_C delivered %d of %d in the guarantee regime", st.Delivered, want)
	}
	// Exactly two lookups per routing decision.
	if alg.Lookups == 0 {
		t.Fatal("decisions must go through the rule tables")
	}
}

// Candidate-level equivalence: the rule-driven Route must produce the
// same candidate set as the native algorithm on random states.
func TestRuleRouteCMatchesNativeCandidates(t *testing.T) {
	h := topology.NewHypercube(5)
	ruled, err := NewRuleRouteC(h)
	if err != nil {
		t.Fatal(err)
	}
	native := routing.NewRouteC(h)
	for seed := int64(0); seed < 4; seed++ {
		f, err := fault.Random(h, fault.RandomOptions{Nodes: 3, Links: 1, Seed: seed, KeepConnected: true})
		if err != nil {
			t.Fatal(err)
		}
		ruled.UpdateFaults(f)
		native.UpdateFaults(f)
		rng := rand.New(rand.NewSource(seed + 50))
		for trial := 0; trial < 300; trial++ {
			src := topology.NodeID(rng.Intn(h.Nodes()))
			dst := topology.NodeID(rng.Intn(h.Nodes()))
			if src == dst || f.NodeFaulty(src) || f.NodeFaulty(dst) {
				continue
			}
			hdr := &routing.Header{Src: src, Dst: dst, Length: 6,
				Phase: rng.Intn(2), DetourLevel: rng.Intn(4)}
			inPort := routing.InjectionPort
			if rng.Intn(3) > 0 {
				inPort = rng.Intn(h.Dim)
			}
			req := routing.Request{Node: src, InPort: inPort, Hdr: hdr}
			hdr2 := *hdr
			req2 := req
			req2.Hdr = &hdr2
			a := native.Route(req)
			b := ruled.Route(req2)
			if len(a) != len(b) {
				t.Fatalf("seed %d trial %d (%05b->%05b): native %v vs ruled %v",
					seed, trial, src, dst, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d trial %d: candidate %d differs: %v vs %v",
						seed, trial, i, a[i], b[i])
				}
			}
		}
	}
}
