package rulesets

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rules"
)

// Round-trip property: printing a parsed program and re-parsing it
// yields a program that analyses identically (same signals, same rule
// counts) and compiles to identical rule tables.
func TestPrintParseRoundTrip(t *testing.T) {
	sources := map[string]string{
		"nafta":      NAFTASource(),
		"nara":       NARASource(),
		"routec":     RouteCSource(5, 2),
		"routec-nft": RouteCNFTSource(5, 2),
	}
	for name, src := range sources {
		prog1, err := rules.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		printed := rules.ProgramString(prog1)
		prog2, err := rules.Parse(printed)
		if err != nil {
			t.Fatalf("%s: reparse printed source: %v\n%s", name, err, printed)
		}
		// Printing must reach a fixed point immediately.
		if again := rules.ProgramString(prog2); again != printed {
			t.Fatalf("%s: printer not a fixed point", name)
		}
		c1, err := rules.Analyze(prog1)
		if err != nil {
			t.Fatalf("%s: analyze original: %v", name, err)
		}
		c2, err := rules.Analyze(prog2)
		if err != nil {
			t.Fatalf("%s: analyze reprinted: %v", name, err)
		}
		if len(c1.Signals) != len(c2.Signals) || len(c1.Bases) != len(c2.Bases) || len(c1.Subs) != len(c2.Subs) {
			t.Fatalf("%s: declaration counts differ after round trip", name)
		}
		// Every rule base compiles to the same table.
		for base := range c1.Bases {
			cb1, err := core.CompileBase(c1, base, core.CompileOptions{})
			if err != nil {
				t.Fatalf("%s/%s: compile original: %v", name, base, err)
			}
			cb2, err := core.CompileBase(c2, base, core.CompileOptions{})
			if err != nil {
				t.Fatalf("%s/%s: compile reprinted: %v", name, base, err)
			}
			if cb1.Entries != cb2.Entries || cb1.Width != cb2.Width {
				t.Fatalf("%s/%s: table changed: %s vs %s", name, base, cb1.Dim(), cb2.Dim())
			}
			for i := range cb1.Table {
				if cb1.Table[i] != cb2.Table[i] {
					t.Fatalf("%s/%s: table entry %d differs", name, base, i)
				}
			}
		}
	}
}

// The optimiser's output can be printed and re-used as a source
// program.
func TestOptimizedProgramPrintsAndReloads(t *testing.T) {
	p, err := LoadRouteC(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	oc, _, err := core.OptimizeProgram(p.Checked, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	printed := rules.ProgramString(oc.Prog)
	reparsed, err := rules.Parse(printed)
	if err != nil {
		t.Fatalf("reparse optimised program: %v\n%s", err, printed)
	}
	if _, err := rules.Analyze(reparsed); err != nil {
		t.Fatalf("analyze optimised program: %v", err)
	}
}
