package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Irregular is an arbitrary switched topology given by its link list —
// the habitat of the paper's cluster networks ("these networks consist
// of routers and links connecting them"), where no regular structure
// can be exploited by the routing algorithm.
type Irregular struct {
	name string
	adj  [][]NodeID // adj[n][p] = neighbour on port p
	port map[[2]NodeID]int
	max  int
}

// NewIrregular builds an irregular topology over n nodes from an edge
// list. Duplicate and self edges are rejected.
func NewIrregular(name string, n int, edges []Link) (*Irregular, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: irregular needs nodes")
	}
	g := &Irregular{
		name: name,
		adj:  make([][]NodeID, n),
		port: make(map[[2]NodeID]int),
	}
	seen := map[Link]bool{}
	// Sort for deterministic port numbering.
	sorted := make([]Link, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})
	for _, e := range sorted {
		l := MakeLink(e.A, e.B)
		if l.A == l.B {
			return nil, fmt.Errorf("topology: self loop at %d", l.A)
		}
		if l.A < 0 || int(l.B) >= n {
			return nil, fmt.Errorf("topology: edge %s out of range", l)
		}
		if seen[l] {
			return nil, fmt.Errorf("topology: duplicate edge %s", l)
		}
		seen[l] = true
		g.port[[2]NodeID{l.A, l.B}] = len(g.adj[l.A])
		g.adj[l.A] = append(g.adj[l.A], l.B)
		g.port[[2]NodeID{l.B, l.A}] = len(g.adj[l.B])
		g.adj[l.B] = append(g.adj[l.B], l.A)
	}
	for _, a := range g.adj {
		if len(a) > g.max {
			g.max = len(a)
		}
	}
	if g.max == 0 {
		return nil, fmt.Errorf("topology: irregular graph has no links")
	}
	return g, nil
}

// RandomIrregular builds a random connected irregular topology: a
// random spanning tree plus extra cross links, deterministic in seed.
func RandomIrregular(n, extra int, seed int64) (*Irregular, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []Link
	seen := map[Link]bool{}
	// Random spanning tree: connect each node to a random earlier one.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := NodeID(perm[i])
		b := NodeID(perm[rng.Intn(i)])
		l := MakeLink(a, b)
		edges = append(edges, l)
		seen[l] = true
	}
	for k := 0; k < extra; k++ {
		for try := 0; try < 100; try++ {
			a := NodeID(rng.Intn(n))
			b := NodeID(rng.Intn(n))
			if a == b {
				continue
			}
			l := MakeLink(a, b)
			if seen[l] {
				continue
			}
			seen[l] = true
			edges = append(edges, l)
			break
		}
	}
	return NewIrregular(fmt.Sprintf("irregular%d+%d", n, extra), n, edges)
}

func (g *Irregular) Name() string { return g.name }
func (g *Irregular) Nodes() int   { return len(g.adj) }
func (g *Irregular) Ports() int   { return g.max }
func (g *Irregular) PortName(p int) string {
	return fmt.Sprintf("p%d", p)
}

func (g *Irregular) Neighbor(n NodeID, p int) NodeID {
	if p < 0 || p >= len(g.adj[n]) {
		return Invalid
	}
	return g.adj[n][p]
}

func (g *Irregular) PortTo(n, m NodeID) (int, bool) {
	p, ok := g.port[[2]NodeID{n, m}]
	return p, ok
}
