package topology

import "fmt"

// Mesh port numbering. The order matters for the routing algorithms: it
// matches the geographic convention used throughout the paper's NAFTA
// discussion (north increases y, east increases x).
const (
	North = 0
	East  = 1
	South = 2
	West  = 3

	// MeshPorts is the number of router ports of a 2-D mesh node.
	MeshPorts = 4
)

var meshPortNames = [MeshPorts]string{"north", "east", "south", "west"}

// OppositeMeshPort returns the port facing the opposite direction
// (north<->south, east<->west).
func OppositeMeshPort(p int) int { return (p + 2) % MeshPorts }

// Mesh is a W x H two-dimensional mesh. Node (x,y) has ID y*W+x; x grows
// east, y grows north. Border ports are unconnected.
type Mesh struct {
	W, H int
}

// NewMesh builds a W x H mesh. W and H must be at least 1 (and at least
// 2 in one dimension to have any links).
func NewMesh(w, h int) *Mesh {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("topology: invalid mesh dimensions %dx%d", w, h))
	}
	return &Mesh{W: w, H: h}
}

func (m *Mesh) Name() string          { return fmt.Sprintf("mesh%dx%d", m.W, m.H) }
func (m *Mesh) Nodes() int            { return m.W * m.H }
func (m *Mesh) Ports() int            { return MeshPorts }
func (m *Mesh) PortName(p int) string { return meshPortNames[p] }

// Node returns the NodeID of coordinates (x,y). Coordinates must be in
// range.
func (m *Mesh) Node(x, y int) NodeID {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		panic(fmt.Sprintf("topology: mesh coordinate (%d,%d) out of range for %s", x, y, m.Name()))
	}
	return NodeID(y*m.W + x)
}

// XY returns the coordinates of node n.
func (m *Mesh) XY(n NodeID) (x, y int) {
	return int(n) % m.W, int(n) / m.W
}

func (m *Mesh) Neighbor(n NodeID, p int) NodeID {
	x, y := m.XY(n)
	switch p {
	case North:
		y++
	case East:
		x++
	case South:
		y--
	case West:
		x--
	default:
		return Invalid
	}
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		return Invalid
	}
	return m.Node(x, y)
}

func (m *Mesh) PortTo(n, o NodeID) (int, bool) {
	nx, ny := m.XY(n)
	ox, oy := m.XY(o)
	dx, dy := ox-nx, oy-ny
	switch {
	case dx == 0 && dy == 1:
		return North, true
	case dx == 1 && dy == 0:
		return East, true
	case dx == 0 && dy == -1:
		return South, true
	case dx == -1 && dy == 0:
		return West, true
	}
	return 0, false
}

// Dist returns the Manhattan distance between nodes a and b.
func (m *Mesh) Dist(a, b NodeID) int {
	ax, ay := m.XY(a)
	bx, by := m.XY(b)
	return abs(ax-bx) + abs(ay-by)
}

// MinimalPorts returns the mesh ports that lead strictly closer to dst
// from cur (the "profitable" directions). It returns nil when cur == dst.
func (m *Mesh) MinimalPorts(cur, dst NodeID) []int {
	cx, cy := m.XY(cur)
	dx, dy := m.XY(dst)
	var out []int
	if dy > cy {
		out = append(out, North)
	}
	if dx > cx {
		out = append(out, East)
	}
	if dy < cy {
		out = append(out, South)
	}
	if dx < cx {
		out = append(out, West)
	}
	return out
}

// Torus is a W x H 2-D torus (mesh with wrap-around links). It shares
// the mesh port numbering; every port of every node is connected. The
// torus is not used by the paper's two case studies but is provided for
// the extension experiments (fault-tolerant routing in tori is the
// subject of several of the paper's references).
type Torus struct {
	W, H int
}

// NewTorus builds a W x H torus. Both dimensions must be at least 3 so
// that wrap-around links are distinct from mesh links.
func NewTorus(w, h int) *Torus {
	if w < 3 || h < 3 {
		panic(fmt.Sprintf("topology: invalid torus dimensions %dx%d (need >=3)", w, h))
	}
	return &Torus{W: w, H: h}
}

func (t *Torus) Name() string          { return fmt.Sprintf("torus%dx%d", t.W, t.H) }
func (t *Torus) Nodes() int            { return t.W * t.H }
func (t *Torus) Ports() int            { return MeshPorts }
func (t *Torus) PortName(p int) string { return meshPortNames[p] }

// Node returns the NodeID of coordinates (x,y) taken modulo the torus
// dimensions.
func (t *Torus) Node(x, y int) NodeID {
	x = ((x % t.W) + t.W) % t.W
	y = ((y % t.H) + t.H) % t.H
	return NodeID(y*t.W + x)
}

// XY returns the coordinates of node n.
func (t *Torus) XY(n NodeID) (x, y int) {
	return int(n) % t.W, int(n) / t.W
}

func (t *Torus) Neighbor(n NodeID, p int) NodeID {
	x, y := t.XY(n)
	switch p {
	case North:
		y++
	case East:
		x++
	case South:
		y--
	case West:
		x--
	default:
		return Invalid
	}
	return t.Node(x, y)
}

func (t *Torus) PortTo(n, o NodeID) (int, bool) {
	for p := 0; p < MeshPorts; p++ {
		if t.Neighbor(n, p) == o {
			return p, true
		}
	}
	return 0, false
}

// Dist returns the wrap-around Manhattan distance between a and b.
func (t *Torus) Dist(a, b NodeID) int {
	ax, ay := t.XY(a)
	bx, by := t.XY(b)
	dx := abs(ax - bx)
	if t.W-dx < dx {
		dx = t.W - dx
	}
	dy := abs(ay - by)
	if t.H-dy < dy {
		dy = t.H - dy
	}
	return dx + dy
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
