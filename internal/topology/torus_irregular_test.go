package topology

import (
	"testing"
	"testing/quick"
)

// Wrap-around semantics on a non-square torus: border crossings in
// both dimensions, and coordinate normalisation in Node().
func TestTorusWrapNeighbors(t *testing.T) {
	tor := NewTorus(5, 3)
	if tor.Nodes() != 15 || tor.Ports() != MeshPorts {
		t.Fatalf("5x3 torus: %d nodes, %d ports", tor.Nodes(), tor.Ports())
	}
	// East off the right border wraps to column 0.
	if got := tor.Neighbor(tor.Node(4, 1), East); got != tor.Node(0, 1) {
		t.Fatalf("east wrap = %d, want %d", got, tor.Node(0, 1))
	}
	// West off column 0 wraps to the right border.
	if got := tor.Neighbor(tor.Node(0, 2), West); got != tor.Node(4, 2) {
		t.Fatalf("west wrap = %d, want %d", got, tor.Node(4, 2))
	}
	// North off the top row wraps to row 0.
	if got := tor.Neighbor(tor.Node(2, 2), North); got != tor.Node(2, 0) {
		t.Fatalf("north wrap = %d, want %d", got, tor.Node(2, 0))
	}
	// South off row 0 wraps to the top row.
	if got := tor.Neighbor(tor.Node(3, 0), South); got != tor.Node(3, 2) {
		t.Fatalf("south wrap = %d, want %d", got, tor.Node(3, 2))
	}
	// Node() normalises arbitrary (even negative) coordinates.
	if tor.Node(-1, -1) != tor.Node(4, 2) || tor.Node(7, 4) != tor.Node(2, 1) {
		t.Fatal("Node() does not normalise coordinates modulo the dimensions")
	}
	// An out-of-range port is not connected.
	if tor.Neighbor(0, MeshPorts) != Invalid || tor.Neighbor(0, -1) != Invalid {
		t.Fatal("out-of-range torus port should be Invalid")
	}
	// XY round-trips for every node.
	for id := 0; id < tor.Nodes(); id++ {
		x, y := tor.XY(NodeID(id))
		if tor.Node(x, y) != NodeID(id) {
			t.Fatalf("XY/Node roundtrip failed for %d", id)
		}
	}
}

// The closed-form wrap-around Manhattan distance must agree with BFS
// over the actual link structure.
func TestTorusDistMatchesBFS(t *testing.T) {
	tor := NewTorus(5, 4)
	for src := 0; src < tor.Nodes(); src++ {
		dist := BFSDist(tor, NodeID(src), nil)
		for dst := 0; dst < tor.Nodes(); dst++ {
			if got := tor.Dist(NodeID(src), NodeID(dst)); got != dist[dst] {
				t.Fatalf("Dist(%d,%d) = %d, BFS says %d", src, dst, got, dist[dst])
			}
		}
	}
}

// PortTo and Neighbor are mutually consistent on the torus, including
// across the wrap links.
func TestTorusPortToProperty(t *testing.T) {
	tor := NewTorus(4, 5)
	f := func(ai, bi uint) bool {
		a := NodeID(ai % uint(tor.Nodes()))
		b := NodeID(bi % uint(tor.Nodes()))
		p, ok := tor.PortTo(a, b)
		if ok {
			return tor.Neighbor(a, p) == b && tor.Dist(a, b) == 1
		}
		return tor.Dist(a, b) != 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusRejectsDegenerateDimensions(t *testing.T) {
	for _, c := range [][2]int{{2, 4}, {4, 2}, {0, 3}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTorus(%d,%d) accepted", c[0], c[1])
				}
			}()
			NewTorus(c[0], c[1])
		}()
	}
}

// Port numbering of an irregular graph is a function of the edge set,
// not of the order the edges were listed in — the rule tables bind
// port indices, so two builds of the same graph must agree.
func TestIrregularDeterministicPortNumbering(t *testing.T) {
	edges := []Link{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}}
	reversed := make([]Link, len(edges))
	for i, e := range edges {
		reversed[len(edges)-1-i] = e
	}
	a, err := NewIrregular("g", 4, edges)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIrregular("g", 4, reversed)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < a.Nodes(); n++ {
		for p := 0; p < a.Ports(); p++ {
			if a.Neighbor(NodeID(n), p) != b.Neighbor(NodeID(n), p) {
				t.Fatalf("node %d port %d differs between edge orderings", n, p)
			}
		}
	}
}

// PortTo/Neighbor consistency on an irregular graph with ragged
// degrees: high ports of low-degree nodes are unconnected.
func TestIrregularPortToConsistency(t *testing.T) {
	g, err := NewIrregular("star+", 5, []Link{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Ports() != 4 {
		t.Fatalf("max degree = %d, want 4", g.Ports())
	}
	for n := 0; n < g.Nodes(); n++ {
		for p := 0; p < g.Ports(); p++ {
			nb := g.Neighbor(NodeID(n), p)
			if nb == Invalid {
				continue
			}
			back, ok := g.PortTo(nb, NodeID(n))
			if !ok || g.Neighbor(nb, back) != NodeID(n) {
				t.Fatalf("link %d->%d has no consistent reverse port", n, nb)
			}
			fwd, ok := g.PortTo(NodeID(n), nb)
			if !ok || fwd != p {
				t.Fatalf("PortTo(%d,%d) = %d,%v, want %d", n, nb, fwd, ok, p)
			}
		}
	}
	// Node 3 has degree 1: its ports 1..3 are unconnected.
	for p := 1; p < g.Ports(); p++ {
		if g.Neighbor(3, p) != Invalid {
			t.Fatalf("leaf node port %d should be Invalid", p)
		}
	}
	if _, ok := g.PortTo(3, 4); ok {
		t.Fatal("PortTo between non-adjacent nodes should be false")
	}
}

// BFS distances behave on irregular graphs: the extra chord shortens
// the path it bridges and nothing else breaks.
func TestIrregularBFSDist(t *testing.T) {
	// A 5-cycle plus the chord 0-2.
	g, err := NewIrregular("c5+", 5, []Link{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	dist := BFSDist(g, 0, nil)
	want := []int{0, 1, 1, 2, 1}
	for n, d := range want {
		if dist[n] != d {
			t.Fatalf("dist[%d] = %d, want %d", n, dist[n], d)
		}
	}
}

func TestIrregularRejectsEmptyNodeSet(t *testing.T) {
	if _, err := NewIrregular("x", 0, []Link{{0, 1}}); err == nil {
		t.Fatal("0-node irregular graph accepted")
	}
	if _, err := RandomIrregular(1, 0, 1); err == nil {
		t.Fatal("1-node random irregular accepted")
	}
}
