package topology

import (
	"fmt"
	"math/bits"
)

// Hypercube is a binary n-cube with 2^Dim nodes. Port i of node n leads
// to the neighbour whose address differs in bit i (n XOR 1<<i). This is
// the topology of the paper's second case study, ROUTE_C.
type Hypercube struct {
	Dim int
}

// NewHypercube builds a hypercube of the given dimension (1..20).
func NewHypercube(dim int) *Hypercube {
	if dim < 1 || dim > 20 {
		panic(fmt.Sprintf("topology: invalid hypercube dimension %d", dim))
	}
	return &Hypercube{Dim: dim}
}

func (h *Hypercube) Name() string          { return fmt.Sprintf("hypercube%d", h.Dim) }
func (h *Hypercube) Nodes() int            { return 1 << h.Dim }
func (h *Hypercube) Ports() int            { return h.Dim }
func (h *Hypercube) PortName(p int) string { return fmt.Sprintf("dim%d", p) }

func (h *Hypercube) Neighbor(n NodeID, p int) NodeID {
	if p < 0 || p >= h.Dim {
		return Invalid
	}
	return n ^ NodeID(1<<p)
}

func (h *Hypercube) PortTo(n, o NodeID) (int, bool) {
	diff := uint(n ^ o)
	if bits.OnesCount(diff) != 1 {
		return 0, false
	}
	return bits.TrailingZeros(diff), true
}

// Dist returns the Hamming distance between a and b, which is the
// minimal hop count in the hypercube.
func (h *Hypercube) Dist(a, b NodeID) int {
	return bits.OnesCount(uint(a ^ b))
}

// MinimalPorts returns the dimensions in which cur and dst differ, i.e.
// the ports on minimal paths from cur to dst. It returns nil when
// cur == dst.
func (h *Hypercube) MinimalPorts(cur, dst NodeID) []int {
	diff := uint(cur ^ dst)
	var out []int
	for diff != 0 {
		p := bits.TrailingZeros(diff)
		out = append(out, p)
		diff &^= 1 << p
	}
	return out
}

// UpPorts returns the minimal ports of cur toward dst that increase the
// node address (0->1 bit transitions), and DownPorts those that decrease
// it. ROUTE_C's deadlock avoidance (after Konstantinidou) first uses all
// address-increasing links, then all address-decreasing links.
func (h *Hypercube) UpPorts(cur, dst NodeID) []int {
	var out []int
	for _, p := range h.MinimalPorts(cur, dst) {
		if cur&(1<<p) == 0 { // bit is 0 at cur, flipping increases address
			out = append(out, p)
		}
	}
	return out
}

// DownPorts returns the minimal ports of cur toward dst that decrease
// the node address. See UpPorts.
func (h *Hypercube) DownPorts(cur, dst NodeID) []int {
	var out []int
	for _, p := range h.MinimalPorts(cur, dst) {
		if cur&(1<<p) != 0 {
			out = append(out, p)
		}
	}
	return out
}
