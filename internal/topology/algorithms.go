package topology

// Filter restricts a topology to its operational part. A nil *Filter (or
// nil function fields) means "everything up". The fault package adapts
// its fault sets to this type; keeping the type here avoids an import
// cycle between topology and fault.
type Filter struct {
	// NodeUp reports whether node n is operational.
	NodeUp func(n NodeID) bool
	// LinkUp reports whether the (undirected) link between a and b is
	// operational. It is only called for adjacent pairs.
	LinkUp func(a, b NodeID) bool
}

func (f *Filter) nodeUp(n NodeID) bool {
	if f == nil || f.NodeUp == nil {
		return true
	}
	return f.NodeUp(n)
}

func (f *Filter) linkUp(a, b NodeID) bool {
	if f == nil || f.LinkUp == nil {
		return true
	}
	return f.LinkUp(a, b)
}

// Up reports whether the hop from a to b is usable: both endpoints and
// the connecting link operational.
func (f *Filter) Up(a, b NodeID) bool {
	return f.nodeUp(a) && f.nodeUp(b) && f.linkUp(a, b)
}

// UpNode reports whether node n is operational under f.
func (f *Filter) UpNode(n NodeID) bool { return f.nodeUp(n) }

// BFSDist computes hop distances from src to every node of g restricted
// by filter f. Unreachable nodes (and faulty ones) get distance -1. If
// src itself is down, every entry is -1.
func BFSDist(g Graph, src NodeID, f *Filter) []int {
	dist := make([]int, g.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	if !f.nodeUp(src) {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for p := 0; p < g.Ports(); p++ {
			m := g.Neighbor(n, p)
			if m == Invalid || dist[m] >= 0 || !f.Up(n, m) {
				continue
			}
			dist[m] = dist[n] + 1
			queue = append(queue, m)
		}
	}
	return dist
}

// Reachable reports whether dst can be reached from src in g under f.
func Reachable(g Graph, src, dst NodeID, f *Filter) bool {
	if src == dst {
		return f.nodeUp(src)
	}
	return BFSDist(g, src, f)[dst] >= 0
}

// Components returns the connected components of g under f as a slice
// of node sets (each sorted by NodeID). Faulty nodes belong to no
// component.
func Components(g Graph, f *Filter) [][]NodeID {
	seen := make([]bool, g.Nodes())
	var comps [][]NodeID
	for s := 0; s < g.Nodes(); s++ {
		if seen[s] || !f.nodeUp(NodeID(s)) {
			continue
		}
		var comp []NodeID
		queue := []NodeID{NodeID(s)}
		seen[s] = true
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			comp = append(comp, n)
			for p := 0; p < g.Ports(); p++ {
				m := g.Neighbor(n, p)
				if m == Invalid || seen[m] || !f.Up(n, m) {
					continue
				}
				seen[m] = true
				queue = append(queue, m)
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// SpanningTree is a rooted spanning tree (or forest fragment) of the
// operational part of a topology, as used by the paper's strawman
// routing algorithm of Section 2.1 ("compute a spanning tree ... route
// messages by only using edges of the tree").
type SpanningTree struct {
	Root NodeID
	// Parent[n] is the parent of n in the tree, Invalid for the root
	// and for nodes outside the root's component.
	Parent []NodeID
	// Depth[n] is the hop distance from the root, -1 outside the tree.
	Depth []int
	// ParentPort[n] is the port of n leading to Parent[n], -1 if none.
	ParentPort []int
}

// BuildSpanningTree builds a BFS spanning tree of g rooted at root,
// restricted by f. Nodes outside root's component have Parent Invalid
// and Depth -1.
func BuildSpanningTree(g Graph, root NodeID, f *Filter) *SpanningTree {
	t := &SpanningTree{
		Root:       root,
		Parent:     make([]NodeID, g.Nodes()),
		Depth:      make([]int, g.Nodes()),
		ParentPort: make([]int, g.Nodes()),
	}
	for i := range t.Parent {
		t.Parent[i] = Invalid
		t.Depth[i] = -1
		t.ParentPort[i] = -1
	}
	if !f.nodeUp(root) {
		return t
	}
	t.Depth[root] = 0
	queue := []NodeID{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for p := 0; p < g.Ports(); p++ {
			m := g.Neighbor(n, p)
			if m == Invalid || !f.Up(n, m) || t.Depth[m] >= 0 {
				continue
			}
			t.Depth[m] = t.Depth[n] + 1
			t.Parent[m] = n
			if pp, ok := g.PortTo(m, n); ok {
				t.ParentPort[m] = pp
			}
			queue = append(queue, m)
		}
	}
	return t
}

// Contains reports whether node n is in the tree.
func (t *SpanningTree) Contains(n NodeID) bool { return t.Depth[n] >= 0 }

// TreeLink reports whether the link between a and b is a tree edge.
func (t *SpanningTree) TreeLink(a, b NodeID) bool {
	return (t.Parent[a] == b) || (t.Parent[b] == a)
}

// NextHop returns the next node on the unique tree path from cur toward
// dst (first ascending to the lowest common ancestor, then descending),
// or Invalid if either node is outside the tree. cur must differ from
// dst.
func (t *SpanningTree) NextHop(cur, dst NodeID) NodeID {
	if !t.Contains(cur) || !t.Contains(dst) {
		return Invalid
	}
	// Walk dst's ancestor chain; if cur is an ancestor of dst we must
	// descend toward dst (to cur's child on that chain), otherwise the
	// path first ascends toward the lowest common ancestor.
	for n := dst; n != t.Root; n = t.Parent[n] {
		if t.Parent[n] == cur {
			return n
		}
	}
	return t.Parent[cur]
}

// PathLen returns the length of the tree path between a and b, or -1 if
// either is outside the tree.
func (t *SpanningTree) PathLen(a, b NodeID) int {
	if !t.Contains(a) || !t.Contains(b) {
		return -1
	}
	// Lift the deeper node, then walk both up to the LCA.
	da, db := t.Depth[a], t.Depth[b]
	n, m := a, b
	steps := 0
	for da > db {
		n = t.Parent[n]
		da--
		steps++
	}
	for db > da {
		m = t.Parent[m]
		db--
		steps++
	}
	for n != m {
		n = t.Parent[n]
		m = t.Parent[m]
		steps += 2
	}
	return steps
}

// TreeEdgeCount returns the number of tree edges (|component|-1 for each
// component covered by the tree).
func (t *SpanningTree) TreeEdgeCount() int {
	c := 0
	for n := range t.Parent {
		if t.Parent[n] != Invalid {
			c++
		}
	}
	return c
}

// CountMinimalPaths returns the number of distinct minimal (shortest)
// paths between src and dst in g under f, computed by BFS layering. The
// count saturates at the given cap to avoid overflow on large
// topologies; pass a cap of 0 for no saturation (may overflow on
// pathological inputs).
func CountMinimalPaths(g Graph, src, dst NodeID, f *Filter, cap int64) int64 {
	dist := BFSDist(g, src, f)
	if dist[dst] < 0 {
		return 0
	}
	counts := make([]int64, g.Nodes())
	counts[src] = 1
	// Process nodes in increasing BFS distance.
	order := make([]NodeID, 0, g.Nodes())
	for n := 0; n < g.Nodes(); n++ {
		if dist[n] >= 0 {
			order = append(order, NodeID(n))
		}
	}
	// Counting sort by distance.
	maxd := 0
	for _, n := range order {
		if dist[n] > maxd {
			maxd = dist[n]
		}
	}
	buckets := make([][]NodeID, maxd+1)
	for _, n := range order {
		buckets[dist[n]] = append(buckets[dist[n]], n)
	}
	for d := 0; d < maxd; d++ {
		for _, n := range buckets[d] {
			if counts[n] == 0 {
				continue
			}
			for p := 0; p < g.Ports(); p++ {
				m := g.Neighbor(n, p)
				if m == Invalid || !f.Up(n, m) || dist[m] != d+1 {
					continue
				}
				counts[m] += counts[n]
				if cap > 0 && counts[m] > cap {
					counts[m] = cap
				}
			}
		}
	}
	return counts[dst]
}
