// Package topology provides the interconnection-network topologies used
// by the fault-tolerant router reproduction: two-dimensional meshes,
// hypercubes and tori, together with the graph algorithms (breadth-first
// search, spanning trees, connectivity, minimal-path port sets) that the
// routing algorithms and the evaluation harness rely on.
//
// A topology is exposed through the Graph interface, which is
// port-indexed: every node has a fixed number of ports and each port
// either connects to a neighbouring node or is unconnected (e.g. mesh
// border ports). Routing algorithms address output links by port number,
// exactly as a hardware router does.
package topology

import "fmt"

// NodeID identifies a node (router) of a topology. IDs are dense and run
// from 0 to Nodes()-1.
type NodeID int

// Invalid is returned by Neighbor for unconnected ports.
const Invalid NodeID = -1

// Graph is a port-indexed interconnection topology. Implementations must
// be immutable after construction so they can be shared between
// goroutines without synchronisation.
type Graph interface {
	// Name returns a short human-readable identifier, e.g. "mesh8x8".
	Name() string
	// Nodes returns the number of nodes.
	Nodes() int
	// Ports returns the number of router ports per node (the maximum
	// degree). Ports are numbered 0..Ports()-1; the local
	// injection/ejection port is not counted.
	Ports() int
	// Neighbor returns the node connected to port p of node n, or
	// Invalid if that port is unconnected.
	Neighbor(n NodeID, p int) NodeID
	// PortTo returns the port of n that connects to m and true, or
	// 0,false if n and m are not adjacent.
	PortTo(n, m NodeID) (int, bool)
	// PortName returns a human-readable name for port p ("north",
	// "dim2", ...). It must be valid for 0 <= p < Ports().
	PortName(p int) string
}

// Link is an undirected link between two adjacent nodes, in canonical
// form (A < B). The paper's fault model (assumption i) treats both
// directions of a link as failing together, so links are undirected.
type Link struct {
	A, B NodeID
}

// MakeLink builds the canonical (A < B) form of the link between a and b.
func MakeLink(a, b NodeID) Link {
	if a > b {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

func (l Link) String() string { return fmt.Sprintf("%d-%d", l.A, l.B) }

// Other returns the endpoint of l that is not n. It panics if n is not
// an endpoint of l.
func (l Link) Other(n NodeID) NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("topology: node %d is not an endpoint of link %s", n, l))
}

// Links enumerates every link of g in canonical form, each exactly once.
func Links(g Graph) []Link {
	seen := make(map[Link]bool)
	var out []Link
	for n := 0; n < g.Nodes(); n++ {
		for p := 0; p < g.Ports(); p++ {
			m := g.Neighbor(NodeID(n), p)
			if m == Invalid {
				continue
			}
			l := MakeLink(NodeID(n), m)
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// Degree returns the number of connected ports of node n.
func Degree(g Graph, n NodeID) int {
	d := 0
	for p := 0; p < g.Ports(); p++ {
		if g.Neighbor(n, p) != Invalid {
			d++
		}
	}
	return d
}

// Validate performs structural sanity checks on a topology: symmetric
// adjacency, consistent PortTo, and in-range neighbours. It is used by
// tests and by constructors of derived structures.
func Validate(g Graph) error {
	n := g.Nodes()
	if n <= 0 {
		return fmt.Errorf("topology %s: no nodes", g.Name())
	}
	for v := 0; v < n; v++ {
		for p := 0; p < g.Ports(); p++ {
			m := g.Neighbor(NodeID(v), p)
			if m == Invalid {
				continue
			}
			if m < 0 || int(m) >= n {
				return fmt.Errorf("topology %s: node %d port %d -> out of range node %d", g.Name(), v, p, m)
			}
			if m == NodeID(v) {
				return fmt.Errorf("topology %s: node %d port %d is a self loop", g.Name(), v, p)
			}
			// Symmetry: m must have some port back to v.
			back, ok := g.PortTo(m, NodeID(v))
			if !ok {
				return fmt.Errorf("topology %s: link %d->%d not symmetric", g.Name(), v, m)
			}
			if g.Neighbor(m, back) != NodeID(v) {
				return fmt.Errorf("topology %s: PortTo(%d,%d)=%d inconsistent", g.Name(), m, v, back)
			}
			// PortTo must agree with Neighbor.
			fp, ok := g.PortTo(NodeID(v), m)
			if !ok || g.Neighbor(NodeID(v), fp) != m {
				return fmt.Errorf("topology %s: PortTo(%d,%d) inconsistent", g.Name(), v, m)
			}
		}
	}
	return nil
}
