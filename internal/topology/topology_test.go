package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeshBasics(t *testing.T) {
	m := NewMesh(4, 3)
	if got := m.Nodes(); got != 12 {
		t.Fatalf("Nodes() = %d, want 12", got)
	}
	if got := m.Ports(); got != 4 {
		t.Fatalf("Ports() = %d, want 4", got)
	}
	if err := Validate(m); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Corner (0,0): only north and east connected.
	n := m.Node(0, 0)
	if m.Neighbor(n, South) != Invalid || m.Neighbor(n, West) != Invalid {
		t.Errorf("corner (0,0) should have no south/west neighbours")
	}
	if m.Neighbor(n, North) != m.Node(0, 1) {
		t.Errorf("north of (0,0) = %d, want %d", m.Neighbor(n, North), m.Node(0, 1))
	}
	if m.Neighbor(n, East) != m.Node(1, 0) {
		t.Errorf("east of (0,0) = %d, want %d", m.Neighbor(n, East), m.Node(1, 0))
	}
	// XY round-trips.
	for id := 0; id < m.Nodes(); id++ {
		x, y := m.XY(NodeID(id))
		if m.Node(x, y) != NodeID(id) {
			t.Fatalf("XY/Node roundtrip failed for %d", id)
		}
	}
}

func TestMeshLinksCount(t *testing.T) {
	// W x H mesh has H*(W-1) + W*(H-1) links.
	for _, tc := range []struct{ w, h int }{{2, 2}, {4, 4}, {5, 3}, {1, 7}, {8, 8}} {
		m := NewMesh(tc.w, tc.h)
		want := tc.h*(tc.w-1) + tc.w*(tc.h-1)
		if got := len(Links(m)); got != want {
			t.Errorf("mesh %dx%d: %d links, want %d", tc.w, tc.h, got, want)
		}
	}
}

func TestMeshDistAndMinimalPorts(t *testing.T) {
	m := NewMesh(5, 5)
	a, b := m.Node(1, 1), m.Node(4, 3)
	if d := m.Dist(a, b); d != 5 {
		t.Fatalf("Dist = %d, want 5", d)
	}
	ports := m.MinimalPorts(a, b)
	if len(ports) != 2 {
		t.Fatalf("MinimalPorts = %v, want 2 ports", ports)
	}
	hasN, hasE := false, false
	for _, p := range ports {
		if p == North {
			hasN = true
		}
		if p == East {
			hasE = true
		}
	}
	if !hasN || !hasE {
		t.Fatalf("MinimalPorts = %v, want {north,east}", ports)
	}
	if got := m.MinimalPorts(a, a); got != nil {
		t.Fatalf("MinimalPorts(a,a) = %v, want nil", got)
	}
}

// Property: every minimal port reduces the distance by exactly one.
func TestMeshMinimalPortsProperty(t *testing.T) {
	m := NewMesh(7, 6)
	f := func(ai, bi uint) bool {
		a := NodeID(ai % uint(m.Nodes()))
		b := NodeID(bi % uint(m.Nodes()))
		for _, p := range m.MinimalPorts(a, b) {
			nb := m.Neighbor(a, p)
			if nb == Invalid || m.Dist(nb, b) != m.Dist(a, b)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTorus(t *testing.T) {
	tor := NewTorus(4, 4)
	if err := Validate(tor); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every node has degree 4.
	for n := 0; n < tor.Nodes(); n++ {
		if d := Degree(tor, NodeID(n)); d != 4 {
			t.Fatalf("torus node %d degree %d, want 4", n, d)
		}
	}
	// Wraparound distance: (0,0) to (3,0) is 1 hop.
	if d := tor.Dist(tor.Node(0, 0), tor.Node(3, 0)); d != 1 {
		t.Fatalf("torus wrap dist = %d, want 1", d)
	}
	// 2*W*H links.
	if got, want := len(Links(tor)), 2*4*4; got != want {
		t.Fatalf("torus links = %d, want %d", got, want)
	}
}

func TestHypercube(t *testing.T) {
	h := NewHypercube(4)
	if err := Validate(h); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h.Nodes() != 16 || h.Ports() != 4 {
		t.Fatalf("unexpected size: %d nodes, %d ports", h.Nodes(), h.Ports())
	}
	// d * 2^(d-1) links.
	if got, want := len(Links(h)), 4*8; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	if d := h.Dist(0, 0b1011); d != 3 {
		t.Fatalf("Dist(0,1011b) = %d, want 3", d)
	}
	mp := h.MinimalPorts(0, 0b1011)
	if len(mp) != 3 {
		t.Fatalf("MinimalPorts = %v, want 3 entries", mp)
	}
}

func TestHypercubeUpDownPorts(t *testing.T) {
	h := NewHypercube(4)
	cur, dst := NodeID(0b0101), NodeID(0b1010) // differ in all 4 bits
	up := h.UpPorts(cur, dst)
	down := h.DownPorts(cur, dst)
	if len(up)+len(down) != 4 {
		t.Fatalf("up %v + down %v should cover 4 dims", up, down)
	}
	for _, p := range up {
		if cur&(1<<p) != 0 {
			t.Errorf("up port %d should flip a 0 bit of cur", p)
		}
	}
	for _, p := range down {
		if cur&(1<<p) == 0 {
			t.Errorf("down port %d should flip a 1 bit of cur", p)
		}
	}
}

// Property: hypercube PortTo and Neighbor are mutually consistent for
// random node pairs.
func TestHypercubePortToProperty(t *testing.T) {
	h := NewHypercube(6)
	f := func(ai, bi uint) bool {
		a := NodeID(ai % uint(h.Nodes()))
		b := NodeID(bi % uint(h.Nodes()))
		p, ok := h.PortTo(a, b)
		if ok {
			return h.Neighbor(a, p) == b && h.Dist(a, b) == 1
		}
		return h.Dist(a, b) != 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDist(t *testing.T) {
	m := NewMesh(4, 4)
	dist := BFSDist(m, m.Node(0, 0), nil)
	for n := 0; n < m.Nodes(); n++ {
		if dist[n] != m.Dist(m.Node(0, 0), NodeID(n)) {
			t.Fatalf("BFS dist to %d = %d, want %d", n, dist[n], m.Dist(m.Node(0, 0), NodeID(n)))
		}
	}
}

func TestBFSDistWithFilter(t *testing.T) {
	m := NewMesh(3, 3)
	// Cut the middle column's vertical links to force detours.
	blocked := map[Link]bool{
		MakeLink(m.Node(1, 0), m.Node(1, 1)): true,
		MakeLink(m.Node(1, 1), m.Node(1, 2)): true,
	}
	f := &Filter{LinkUp: func(a, b NodeID) bool { return !blocked[MakeLink(a, b)] }}
	dist := BFSDist(m, m.Node(1, 0), f)
	// (1,1) now requires going around: (1,0)->(0,0)->(0,1)->(1,1) = 3.
	if dist[m.Node(1, 1)] != 3 {
		t.Fatalf("detour dist = %d, want 3", dist[m.Node(1, 1)])
	}
}

func TestBFSDistFaultySource(t *testing.T) {
	m := NewMesh(3, 3)
	f := &Filter{NodeUp: func(n NodeID) bool { return n != m.Node(0, 0) }}
	dist := BFSDist(m, m.Node(0, 0), f)
	for _, d := range dist {
		if d != -1 {
			t.Fatal("faulty source should reach nothing")
		}
	}
}

func TestComponents(t *testing.T) {
	m := NewMesh(4, 1) // a path of 4 nodes
	f := &Filter{NodeUp: func(n NodeID) bool { return n != 1 }}
	comps := Components(m, f)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2 (%v)", len(comps), comps)
	}
	sizes := map[int]bool{len(comps[0]): true, len(comps[1]): true}
	if !sizes[1] || !sizes[2] {
		t.Fatalf("component sizes %v, want {1,2}", comps)
	}
}

func TestSpanningTree(t *testing.T) {
	m := NewMesh(4, 4)
	tree := BuildSpanningTree(m, m.Node(0, 0), nil)
	if tree.TreeEdgeCount() != m.Nodes()-1 {
		t.Fatalf("tree edges = %d, want %d", tree.TreeEdgeCount(), m.Nodes()-1)
	}
	// Every node reachable, depth equals BFS distance from root.
	for n := 0; n < m.Nodes(); n++ {
		if !tree.Contains(NodeID(n)) {
			t.Fatalf("node %d missing from tree", n)
		}
		if tree.Depth[n] != m.Dist(m.Node(0, 0), NodeID(n)) {
			t.Fatalf("depth(%d) = %d, want BFS dist %d", n, tree.Depth[n], m.Dist(m.Node(0, 0), NodeID(n)))
		}
	}
}

func TestSpanningTreeNextHopWalk(t *testing.T) {
	m := NewMesh(5, 4)
	tree := BuildSpanningTree(m, m.Node(2, 2), nil)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		src := NodeID(rng.Intn(m.Nodes()))
		dst := NodeID(rng.Intn(m.Nodes()))
		if src == dst {
			continue
		}
		cur := src
		steps := 0
		for cur != dst {
			next := tree.NextHop(cur, dst)
			if next == Invalid {
				t.Fatalf("NextHop(%d,%d) invalid", cur, dst)
			}
			if !tree.TreeLink(cur, next) {
				t.Fatalf("NextHop hop %d->%d is not a tree edge", cur, next)
			}
			cur = next
			steps++
			if steps > m.Nodes()*2 {
				t.Fatalf("walk %d->%d did not terminate", src, dst)
			}
		}
		if want := tree.PathLen(src, dst); steps != want {
			t.Fatalf("walk %d->%d took %d steps, PathLen says %d", src, dst, steps, want)
		}
	}
}

func TestSpanningTreeWithFaults(t *testing.T) {
	m := NewMesh(4, 4)
	f := &Filter{NodeUp: func(n NodeID) bool { return n != m.Node(1, 1) && n != m.Node(2, 2) }}
	tree := BuildSpanningTree(m, m.Node(0, 0), f)
	reach := 0
	for n := 0; n < m.Nodes(); n++ {
		if tree.Contains(NodeID(n)) {
			reach++
		}
	}
	if reach != 14 { // 16 nodes - 2 faulty, rest still connected
		t.Fatalf("tree covers %d nodes, want 14", reach)
	}
	if tree.Contains(m.Node(1, 1)) {
		t.Fatal("faulty node must not be in tree")
	}
}

func TestCountMinimalPaths(t *testing.T) {
	m := NewMesh(5, 5)
	// (0,0)->(2,2): C(4,2) = 6 minimal paths.
	got := CountMinimalPaths(m, m.Node(0, 0), m.Node(2, 2), nil, 0)
	if got != 6 {
		t.Fatalf("minimal paths = %d, want 6", got)
	}
	// Hypercube 0 -> node with k bits set: k! paths.
	h := NewHypercube(4)
	if got := CountMinimalPaths(h, 0, 0b0111, nil, 0); got != 6 {
		t.Fatalf("hypercube minimal paths = %d, want 3! = 6", got)
	}
	// Saturation cap.
	big := NewMesh(12, 12)
	capped := CountMinimalPaths(big, big.Node(0, 0), big.Node(11, 11), nil, 1000)
	if capped != 1000 {
		t.Fatalf("capped count = %d, want 1000", capped)
	}
}

func TestCountMinimalPathsWithFault(t *testing.T) {
	m := NewMesh(3, 3)
	// (0,0)->(2,2) has 6 minimal paths; removing centre node (1,1)
	// leaves only the two border paths.
	f := &Filter{NodeUp: func(n NodeID) bool { return n != m.Node(1, 1) }}
	if got := CountMinimalPaths(m, m.Node(0, 0), m.Node(2, 2), f, 0); got != 2 {
		t.Fatalf("minimal paths avoiding centre = %d, want 2", got)
	}
}

func TestLinkOther(t *testing.T) {
	l := MakeLink(5, 3)
	if l.A != 3 || l.B != 5 {
		t.Fatalf("MakeLink not canonical: %+v", l)
	}
	if l.Other(3) != 5 || l.Other(5) != 3 {
		t.Fatal("Other is wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint should panic")
		}
	}()
	l.Other(7)
}

func TestOppositeMeshPort(t *testing.T) {
	if OppositeMeshPort(North) != South || OppositeMeshPort(South) != North ||
		OppositeMeshPort(East) != West || OppositeMeshPort(West) != East {
		t.Fatal("OppositeMeshPort wrong")
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	if err := Validate(badGraph{}); err == nil {
		t.Fatal("Validate should reject an asymmetric graph")
	}
}

// badGraph has a one-directional edge 0->1.
type badGraph struct{}

func (badGraph) Name() string        { return "bad" }
func (badGraph) Nodes() int          { return 2 }
func (badGraph) Ports() int          { return 1 }
func (badGraph) PortName(int) string { return "p" }
func (badGraph) Neighbor(n NodeID, p int) NodeID {
	if n == 0 {
		return 1
	}
	return Invalid
}
func (badGraph) PortTo(n, m NodeID) (int, bool) {
	if n == 0 && m == 1 {
		return 0, true
	}
	return 0, false
}

func TestIrregularBasics(t *testing.T) {
	g, err := NewIrregular("tri", 4, []Link{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 4 || g.Ports() != 3 {
		t.Fatalf("nodes=%d ports=%d", g.Nodes(), g.Ports())
	}
	if Degree(g, 2) != 3 || Degree(g, 3) != 1 {
		t.Fatal("degrees wrong")
	}
	// Errors.
	if _, err := NewIrregular("x", 2, []Link{{0, 0}}); err == nil {
		t.Fatal("self loop should fail")
	}
	if _, err := NewIrregular("x", 2, []Link{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("duplicate edge should fail")
	}
	if _, err := NewIrregular("x", 2, []Link{{0, 5}}); err == nil {
		t.Fatal("out of range edge should fail")
	}
	if _, err := NewIrregular("x", 2, nil); err == nil {
		t.Fatal("no links should fail")
	}
}

func TestRandomIrregularConnectedAndValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, err := RandomIrregular(20, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if comps := Components(g, nil); len(comps) != 1 {
			t.Fatalf("seed %d: %d components", seed, len(comps))
		}
	}
	// Deterministic in the seed.
	a, _ := RandomIrregular(12, 4, 7)
	b, _ := RandomIrregular(12, 4, 7)
	for n := 0; n < a.Nodes(); n++ {
		for p := 0; p < a.Ports(); p++ {
			if a.Neighbor(NodeID(n), p) != b.Neighbor(NodeID(n), p) {
				t.Fatal("RandomIrregular not deterministic")
			}
		}
	}
}
