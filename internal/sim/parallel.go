package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// Job is one simulation of a parallel sweep. Make must build a fresh
// Config — in particular a fresh Algorithm instance — because
// algorithm instances hold mutable distributed fault state and must
// not be shared between concurrently running networks. The same rule
// applies to Config.Recorder: a flight recorder is unsynchronised, so
// Make must create one per job (never share a recorder across jobs).
type Job struct {
	Label string
	Make  func() Config
}

// JobResult pairs a job label with its result or error.
type JobResult struct {
	Label  string
	Result Result
	Err    error
}

// RunParallel executes the jobs on a bounded worker pool and returns
// the results in job order. workers <= 0 selects GOMAXPROCS. Each
// simulation is deterministic given its seed, so the parallel sweep
// produces exactly the same numbers as a sequential one.
func RunParallel(jobs []Job, workers int) []JobResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]JobResult, len(jobs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i].Label = jobs[i].Label
				func() {
					defer func() {
						if r := recover(); r != nil {
							out[i].Err = fmt.Errorf("sim: job %q panicked: %v", jobs[i].Label, r)
						}
					}()
					out[i].Result, out[i].Err = Run(jobs[i].Make())
				}()
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}

// PoolSize returns a RunParallel pool size that avoids oversubscribing
// the machine when each job's network itself steps in parallel: the
// two levels multiply (jobs × Config.Workers goroutines are runnable
// at once), so the job pool gets GOMAXPROCS divided by the per-job
// worker count, floored at one. Pass stepWorkers <= 1 for serial jobs
// (the result is then plain GOMAXPROCS, RunParallel's own default).
func PoolSize(stepWorkers int) int {
	if stepWorkers < 1 {
		stepWorkers = 1
	}
	w := runtime.GOMAXPROCS(0) / stepWorkers
	if w < 1 {
		w = 1
	}
	return w
}

// Replication aggregates one configuration over several seeds.
type Replication struct {
	Seeds      []int64
	Latency    metrics.Accumulator
	Throughput metrics.Accumulator
	Delivered  metrics.Accumulator // delivery ratio per seed
}

// Replicate runs one configuration per seed (in parallel) and
// aggregates the headline metrics; experiment sweeps use it to report
// means with spread instead of single-seed values. make is called once
// per seed from the worker goroutine and — like Job.Make — must return
// a Config with a fresh Algorithm (and Recorder, if any): sharing one
// instance across concurrent runs races on its fault state.
func Replicate(mk func(seed int64) Config, seeds []int64, workers int) (*Replication, error) {
	jobs := make([]Job, len(seeds))
	for i, seed := range seeds {
		seed := seed
		jobs[i] = Job{Label: fmt.Sprintf("seed%d", seed), Make: func() Config {
			c := mk(seed)
			c.Seed = seed
			return c
		}}
	}
	out := RunParallel(jobs, workers)
	rep := &Replication{Seeds: seeds}
	for _, jr := range out {
		if jr.Err != nil {
			return nil, jr.Err
		}
		rep.Latency.Add(jr.Result.Stats.AvgNetLatency())
		rep.Throughput.Add(jr.Result.Throughput())
		rep.Delivered.Add(jr.Result.Stats.DeliveredRatio())
	}
	return rep, nil
}
