// Package sim is the experiment harness: it wires topology, routing
// algorithm, fault pattern and synthetic traffic into a warm-up /
// measurement / drain protocol and reports steady-state statistics.
// The benchmark suite and cmd/tables use it to regenerate the paper's
// quantitative results.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Config describes one simulation run.
type Config struct {
	Graph     topology.Graph
	Algorithm routing.Algorithm
	Selector  routing.Selector

	VCs                   int
	BufDepth              int
	DecisionCyclesPerStep int

	// Workers forwards network.Config.Workers: >= 2 shards the router
	// pipeline stages of every cycle across that many goroutines
	// (bit-identical statistics to the serial engine); 0 or 1 keeps the
	// serial stepping path. When combining with RunParallel, size the
	// job pool with PoolSize to avoid oversubscribing the machine.
	Workers int

	Pattern traffic.Pattern
	// Rate is the offered load in flits per node per cycle.
	Rate   float64
	Length int
	Seed   int64

	// Faults, when non-nil, is applied before the warm-up (the
	// diagnosis runs to a fixpoint first, per assumption iv).
	Faults *fault.Set
	// FaultSchedule, when non-nil, injects additional timed faults
	// while the simulation runs (times are cycles from simulation
	// start); each event triggers the fault surgery and a fresh
	// diagnosis phase. Run drains a Clone (and applies the events to a
	// Clone of Faults), so the caller's schedule and fault set are
	// never mutated: the same Config can be run repeatedly or shared
	// across Replicate jobs without a silent no-replay on reuse.
	FaultSchedule *fault.Schedule

	WarmupCycles  int64
	MeasureCycles int64
	// DrainCycles bounds the post-measurement drain (no injection).
	DrainCycles int64

	// TrackLatencies retains per-message records and fills the
	// latency percentiles of the Result (costs memory on long runs).
	TrackLatencies bool
	// FavorMarked forwards the network option that prioritises
	// fault-detoured messages in switch allocation.
	FavorMarked bool

	// Recorder, when non-nil, attaches a flight recorder to the run's
	// network (see internal/trace). Recorders are single-run and
	// unsynchronised: parallel sweeps must build one per job inside
	// Job.Make, exactly as they already build one Algorithm per job.
	// The caller owns Recorder.Close (which finalises the sink).
	Recorder *trace.Recorder
	// LivelockAgeCycles forwards the network's livelock age bound:
	// when > 0, a packet in flight for longer triggers the automatic
	// post-mortem in Result.PostMortem.
	LivelockAgeCycles int64

	// OnNetwork, when non-nil, is invoked once with the freshly built
	// network, after the initial faults are applied and before the
	// first cycle. The campaign harness keeps the handle to run its
	// post-run oracle checks (invariants, flit conservation, message
	// audits) on the final network state.
	OnNetwork func(*network.Network)

	// Failover forwards network.Config.Failover: a decision plane that
	// resolves fault events by flipping precompiled backup engines in
	// (or running the live recompute itself for uncovered classes). It
	// is attached before the initial faults are applied, so a covered
	// initial fault set flips at cycle 0.
	Failover network.FaultHandler

	// Reconfigs, when non-empty, hot-swaps the decision engine
	// mid-run: at each event's cycle (from simulation start, warm-up
	// included) the engine built by Make replaces the running one via
	// network.Reconfigure. The events are applied in time order; Run
	// copies the slice, so a shared Config stays reusable. The
	// Algorithm must be a reconfig.Swapper for swaps to land while
	// worms are in flight.
	Reconfigs []Reconfig
}

// Reconfig is one scheduled engine hot-swap.
type Reconfig struct {
	// At is the cycle (from simulation start) the swap fires at.
	At int64
	// Make builds the replacement engine; it runs at swap time so the
	// engine's internal state is fresh.
	Make func() (routing.Algorithm, error)
	// Force drains the network first when the deadlock regimes of the
	// old and new engines are incompatible.
	Force bool
}

func (c *Config) defaults() {
	if c.Length == 0 {
		c.Length = 8
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 1000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 4000
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 50000
	}
	if c.Pattern == nil {
		c.Pattern = traffic.Uniform{Nodes: c.Graph.Nodes()}
	}
}

// Result holds the measurement-window statistics of one run.
type Result struct {
	// Stats is the delta of the measurement window (plus drain for
	// delivery accounting).
	Stats network.Stats
	// OfferedRate echoes the configured load.
	OfferedRate float64
	// OfferedMessages counts messages the generator produced during
	// the measurement window.
	OfferedMessages int64
	// QueueGrowth is the increase of backlogged messages across the
	// measurement window — positive sustained growth means the
	// network is saturated at this load.
	QueueGrowth int
	// Drained reports whether the network emptied during the drain
	// phase.
	Drained bool
	// Nodes echoes the topology size (for throughput normalisation).
	Nodes int
	// LatencyP50/P95/P99 are network-latency percentiles of messages
	// delivered during the measurement window (only when
	// Config.TrackLatencies is set).
	LatencyP50, LatencyP95, LatencyP99 float64
	// PostMortem holds the automatic stall report when the run's
	// network detected a deadlock or livelock (nil otherwise).
	PostMortem *trace.Report
}

// Throughput returns accepted flits per node per cycle during the
// measurement window.
func (r *Result) Throughput() float64 {
	if r.Stats.Cycles == 0 {
		return 0
	}
	return float64(r.Stats.FlitsDelivered) / float64(r.Stats.Cycles) / float64(r.Nodes)
}

// blocksOf extracts a fault-block view from algorithms that maintain
// one (NAFTA); other algorithms return nil.
type blocker interface{ Blocks() *fault.BlockInfo }

// Run executes one simulation according to cfg.
func Run(cfg Config) (Result, error) {
	if cfg.Graph == nil || cfg.Algorithm == nil {
		return Result{}, fmt.Errorf("sim: Config needs Graph and Algorithm")
	}
	cfg.defaults()
	var postMortem *trace.Report
	net := network.New(network.Config{
		Graph:                 cfg.Graph,
		Algorithm:             cfg.Algorithm,
		Selector:              cfg.Selector,
		VCs:                   cfg.VCs,
		BufDepth:              cfg.BufDepth,
		DecisionCyclesPerStep: cfg.DecisionCyclesPerStep,
		Workers:               cfg.Workers,
		RecordMessages:        cfg.TrackLatencies,
		FavorMarked:           cfg.FavorMarked,
		Recorder:              cfg.Recorder,
		LivelockAgeCycles:     cfg.LivelockAgeCycles,
		Failover:              cfg.Failover,
		OnPostMortem:          func(r *trace.Report) { postMortem = r },
	})
	defer net.Close()
	f := cfg.Faults
	if f == nil {
		f = fault.NewSet()
	}
	sched := cfg.FaultSchedule
	if sched != nil {
		// The schedule cursor and the fault set it mutates are private
		// to this run: a shared Config stays reusable (and two
		// concurrent Replicate jobs do not race on the cursor).
		sched = sched.Clone()
		f = f.Clone()
	}
	net.ApplyFaults(f)
	if cfg.OnNetwork != nil {
		cfg.OnNetwork(net)
	}

	exclude := func(n topology.NodeID) bool {
		if f.NodeFaulty(n) {
			return true
		}
		if b, ok := cfg.Algorithm.(blocker); ok {
			if blocks := b.Blocks(); blocks != nil && blocks.DisabledNode(n) {
				return true
			}
		}
		return false
	}
	gen := &traffic.Generator{
		Graph:   cfg.Graph,
		Pattern: cfg.Pattern,
		Rate:    cfg.Rate,
		Length:  cfg.Length,
		Rng:     rand.New(rand.NewSource(cfg.Seed)),
		Exclude: exclude,
	}
	if err := gen.Validate(); err != nil {
		return Result{}, err
	}

	applySchedule := func() {
		if sched == nil {
			return
		}
		if fired := sched.ApplyUpTo(net.Now(), f); len(fired) > 0 {
			net.ApplyFaults(f)
		}
	}
	reconfigs := append([]Reconfig(nil), cfg.Reconfigs...)
	sort.Slice(reconfigs, func(i, j int) bool { return reconfigs[i].At < reconfigs[j].At })
	nextReconfig := 0
	applyReconfigs := func() error {
		for nextReconfig < len(reconfigs) && reconfigs[nextReconfig].At <= net.Now() {
			rc := reconfigs[nextReconfig]
			nextReconfig++
			next, err := rc.Make()
			if err != nil {
				return fmt.Errorf("sim: reconfig at cycle %d: %w", rc.At, err)
			}
			if err := net.Reconfigure(next, rc.Force); err != nil {
				return fmt.Errorf("sim: reconfig at cycle %d: %w", rc.At, err)
			}
		}
		return nil
	}
	for i := int64(0); i < cfg.WarmupCycles; i++ {
		applySchedule()
		if err := applyReconfigs(); err != nil {
			return Result{}, err
		}
		gen.Tick(net)
		net.Step()
	}
	before := net.Stats()
	offeredBefore := gen.Offered
	queueBefore := net.Queued() + net.InFlight()
	for i := int64(0); i < cfg.MeasureCycles; i++ {
		applySchedule()
		if err := applyReconfigs(); err != nil {
			return Result{}, err
		}
		gen.Tick(net)
		net.Step()
	}
	queueAfter := net.Queued() + net.InFlight()
	// Snapshot BEFORE draining: the measurement window must only count
	// what the network accepted during it, otherwise drain-time
	// deliveries inflate the throughput.
	after := net.Stats()
	drained := net.Drain(cfg.DrainCycles)
	final := net.Stats()

	res := Result{
		OfferedRate:     cfg.Rate,
		OfferedMessages: gen.Offered - offeredBefore,
		QueueGrowth:     queueAfter - queueBefore,
		Drained:         drained,
		Nodes:           cfg.Graph.Nodes(),
		PostMortem:      postMortem,
	}
	if cfg.TrackLatencies {
		windowStart := cfg.WarmupCycles
		windowEnd := cfg.WarmupCycles + cfg.MeasureCycles
		var lats []float64
		for _, m := range net.Messages {
			if m.State != network.StateDelivered || m.DoneTime < windowStart || m.DoneTime >= windowEnd {
				continue
			}
			lats = append(lats, float64(m.NetworkLatency()))
		}
		sort.Float64s(lats)
		res.LatencyP50 = metrics.Quantile(lats, 0.50)
		res.LatencyP95 = metrics.Quantile(lats, 0.95)
		res.LatencyP99 = metrics.Quantile(lats, 0.99)
	}
	res.Stats = network.Stats{
		Cycles:            cfg.MeasureCycles,
		Injected:          after.Injected - before.Injected,
		Delivered:         after.Delivered - before.Delivered,
		Dropped:           after.Dropped - before.Dropped,
		Unreachable:       after.Unreachable - before.Unreachable,
		Killed:            after.Killed - before.Killed,
		FlitsDelivered:    after.FlitsDelivered - before.FlitsDelivered,
		HopsSum:           after.HopsSum - before.HopsSum,
		StepsSum:          after.StepsSum - before.StepsSum,
		MisroutesSum:      after.MisroutesSum - before.MisroutesSum,
		MarkedCount:       after.MarkedCount - before.MarkedCount,
		LatencySum:        after.LatencySum - before.LatencySum,
		NetLatencySum:     after.NetLatencySum - before.NetLatencySum,
		MaxLatency:        after.MaxLatency,
		DeadlockSuspected: final.DeadlockSuspected,
	}
	return res, nil
}

// LoadSweep runs cfg at each offered load and returns the per-load
// results (the latency-vs-load curves of experiment E7).
func LoadSweep(cfg Config, rates []float64) ([]Result, error) {
	out := make([]Result, 0, len(rates))
	for _, r := range rates {
		c := cfg
		c.Rate = r
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// SaturationThroughput returns the highest measured throughput across
// a load sweep (flits/node/cycle).
func SaturationThroughput(results []Result) float64 {
	best := 0.0
	for i := range results {
		if t := results[i].Throughput(); t > best {
			best = t
		}
	}
	return best
}
