package sim

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func TestRunBasic(t *testing.T) {
	m := topology.NewMesh(6, 6)
	res, err := Run(Config{
		Graph:         m,
		Algorithm:     routing.NewNARA(m),
		Rate:          0.1,
		Length:        8,
		Seed:          1,
		WarmupCycles:  300,
		MeasureCycles: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.Stats.Dropped != 0 {
		t.Fatalf("fault-free run dropped %d", res.Stats.Dropped)
	}
	if !res.Drained {
		t.Fatal("low-load run must drain")
	}
	if res.Stats.DeadlockSuspected {
		t.Fatal("deadlock suspected")
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput should be positive")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
	m := topology.NewMesh(4, 4)
	if _, err := Run(Config{Graph: m, Algorithm: routing.NewXY(m), Rate: 99}); err == nil {
		t.Fatal("absurd rate should error")
	}
}

func TestRunWithFaultsExcludesDisabled(t *testing.T) {
	m := topology.NewMesh(8, 8)
	f, err := fault.LShape(m, 3, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	alg := routing.NewNAFTA(m)
	res, err := Run(Config{
		Graph:         m,
		Algorithm:     alg,
		Rate:          0.08,
		Length:        6,
		Seed:          2,
		Faults:        f,
		WarmupCycles:  300,
		MeasureCycles: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Generated traffic avoids faulty and deactivated nodes; NAFTA
	// must deliver essentially everything.
	total := res.Stats.Delivered + res.Stats.Dropped
	if float64(res.Stats.Delivered) < 0.99*float64(total) {
		t.Fatalf("delivered %d of %d", res.Stats.Delivered, total)
	}
}

func TestLoadSweepLatencyMonotone(t *testing.T) {
	m := topology.NewMesh(6, 6)
	cfg := Config{
		Graph:         m,
		Algorithm:     routing.NewNARA(m),
		Length:        8,
		Seed:          3,
		WarmupCycles:  300,
		MeasureCycles: 1200,
		Pattern:       traffic.Uniform{Nodes: m.Nodes()},
	}
	results, err := LoadSweep(cfg, []float64{0.02, 0.30})
	if err != nil {
		t.Fatal(err)
	}
	lo := results[0].Stats.AvgNetLatency()
	hi := results[1].Stats.AvgNetLatency()
	if hi <= lo {
		t.Fatalf("latency should rise with load: %.1f -> %.1f", lo, hi)
	}
	if sat := SaturationThroughput(results); sat <= 0 {
		t.Fatalf("saturation throughput %f", sat)
	}
}

func TestAdaptiveBeatsObliviousOnTranspose(t *testing.T) {
	// The motivating comparison: on the adversarial transpose pattern
	// the fully adaptive NARA sustains more throughput than
	// dimension-order XY at high load.
	m := topology.NewMesh(8, 8)
	high := 0.5
	runFor := func(alg routing.Algorithm) float64 {
		res, err := Run(Config{
			Graph:         m,
			Algorithm:     alg,
			Pattern:       traffic.Transpose{Mesh: m},
			Rate:          high,
			Length:        8,
			Seed:          4,
			WarmupCycles:  500,
			MeasureCycles: 2500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput()
	}
	xy := runFor(routing.NewXY(m))
	nara := runFor(routing.NewNARA(m))
	if nara <= xy {
		t.Fatalf("adaptive should beat oblivious on transpose: nara=%.4f xy=%.4f", nara, xy)
	}
}

func TestTrackLatenciesPercentiles(t *testing.T) {
	m := topology.NewMesh(6, 6)
	res, err := Run(Config{
		Graph:          m,
		Algorithm:      routing.NewNARA(m),
		Rate:           0.1,
		Length:         6,
		Seed:           8,
		WarmupCycles:   300,
		MeasureCycles:  1500,
		TrackLatencies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyP50 <= 0 || res.LatencyP95 < res.LatencyP50 || res.LatencyP99 < res.LatencyP95 {
		t.Fatalf("percentiles inconsistent: p50=%v p95=%v p99=%v",
			res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	// The mean must lie between p50-ish and p99.
	if res.Stats.AvgNetLatency() > res.LatencyP99 {
		t.Fatalf("mean %v above p99 %v", res.Stats.AvgNetLatency(), res.LatencyP99)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	m := topology.NewMesh(6, 6)
	mkJob := func(rate float64) Job {
		return Job{
			Label: "r",
			Make: func() Config {
				return Config{
					Graph: m, Algorithm: routing.NewNARA(m),
					Rate: rate, Length: 6, Seed: 4,
					WarmupCycles: 200, MeasureCycles: 800,
				}
			},
		}
	}
	rates := []float64{0.05, 0.1, 0.15, 0.2}
	jobs := make([]Job, len(rates))
	for i, r := range rates {
		jobs[i] = mkJob(r)
	}
	par := RunParallel(jobs, 4)
	for i, r := range rates {
		seq, err := Run(mkJob(r).Make())
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Err != nil {
			t.Fatal(par[i].Err)
		}
		if par[i].Result.Stats.Delivered != seq.Stats.Delivered ||
			par[i].Result.Stats.LatencySum != seq.Stats.LatencySum {
			t.Fatalf("rate %v: parallel result diverges from sequential", r)
		}
	}
}

func TestRunParallelPanicRecovery(t *testing.T) {
	jobs := []Job{{
		Label: "boom",
		Make:  func() Config { panic("constructor exploded") },
	}}
	out := RunParallel(jobs, 2)
	if out[0].Err == nil {
		t.Fatal("panic should surface as an error")
	}
}

func TestFaultScheduleMidRun(t *testing.T) {
	m := topology.NewMesh(8, 8)
	sched := fault.NewSchedule(nil)
	sched.AddNodeFault(600, m.Node(4, 4))
	sched.AddLinkFault(900, m.Node(2, 2), m.Node(2, 3))
	res, err := Run(Config{
		Graph:         m,
		Algorithm:     routing.NewNAFTA(m),
		Rate:          0.08,
		Length:        6,
		Seed:          21,
		FaultSchedule: sched,
		WarmupCycles:  400,
		MeasureCycles: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Some in-flight messages are killed by the two fault events, but
	// routing keeps delivering afterwards.
	if res.Stats.Killed == 0 {
		t.Fatal("mid-run faults should kill some crossing worms")
	}
	if res.Stats.DeadlockSuspected {
		t.Fatal("deadlock suspected")
	}
	total := res.Stats.Delivered + res.Stats.Dropped
	if total == 0 || float64(res.Stats.Delivered) < 0.98*float64(total) {
		t.Fatalf("delivery collapsed after scheduled faults: %d of %d", res.Stats.Delivered, total)
	}
	if !sched.Pending() {
		t.Fatal("caller's schedule must stay reusable (Run drains a clone)")
	}
}

// TestFaultScheduleReusable is the regression test for the silent
// no-replay bug: sim.Run used to advance the caller's schedule cursor,
// so a second run of the same Config saw zero fault events and
// produced different (fault-free) statistics. Run now drains a Clone.
func TestFaultScheduleReusable(t *testing.T) {
	m := topology.NewMesh(8, 8)
	sched := fault.NewSchedule(nil)
	sched.AddNodeFault(500, m.Node(3, 3))
	sched.AddLinkFault(800, m.Node(5, 5), m.Node(5, 6))
	mk := func() Config {
		return Config{
			Graph:         m,
			Algorithm:     routing.NewNAFTA(m),
			Rate:          0.08,
			Length:        6,
			Seed:          13,
			FaultSchedule: sched,
			WarmupCycles:  300,
			MeasureCycles: 1500,
		}
	}
	first, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Killed == 0 {
		t.Fatal("scheduled faults should kill some crossing worms")
	}
	second, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats != second.Stats {
		t.Fatalf("schedule reuse diverged:\n first=%+v\nsecond=%+v", first.Stats, second.Stats)
	}
	if sched.Pending() != true || sched.Len() != 2 {
		t.Fatalf("caller's schedule mutated: pending=%v len=%d", sched.Pending(), sched.Len())
	}
	// The same shared schedule must also be safe across concurrent
	// Replicate jobs (exercised under -race in CI).
	rep, err := Replicate(func(seed int64) Config {
		c := mk()
		c.Seed = seed
		return c
	}, []int64{1, 2, 3, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency.N() != 4 {
		t.Fatalf("replications = %d", rep.Latency.N())
	}
}

func TestReplicate(t *testing.T) {
	m := topology.NewMesh(6, 6)
	// The constructor runs once per seed on the worker goroutine; a
	// fresh Algorithm per call is what keeps the parallel sweep
	// race-free (algorithm instances carry mutable fault state).
	mk := func(seed int64) Config {
		return Config{
			Graph: m, Algorithm: routing.NewXY(m),
			Rate: 0.08, Length: 6,
			WarmupCycles: 200, MeasureCycles: 800,
		}
	}
	rep, err := Replicate(mk, []int64{1, 2, 3, 4, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency.N() != 5 {
		t.Fatalf("replications = %d", rep.Latency.N())
	}
	if rep.Latency.Mean() <= 0 || rep.Throughput.Mean() <= 0 {
		t.Fatal("aggregates should be positive")
	}
	if rep.Delivered.Min() < 0.99 {
		t.Fatalf("fault-free delivery min %v", rep.Delivered.Min())
	}
	// Different seeds give (slightly) different latencies.
	if rep.Latency.Min() == rep.Latency.Max() {
		t.Fatal("seeds should differ")
	}
}

func TestRunWithRecorder(t *testing.T) {
	m := topology.NewMesh(4, 4)
	base := Config{
		Graph: m, Algorithm: routing.NewNARA(m),
		Rate: 0.1, Length: 6, Seed: 7,
		WarmupCycles: 100, MeasureCycles: 500,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	traced := base
	rec := trace.New(m.Nodes(), 128)
	traced.Recorder = rec
	res, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	// The recorder is observation only: identical statistics.
	if res.Stats != plain.Stats {
		t.Fatalf("traced run diverged: %+v vs %+v", res.Stats, plain.Stats)
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("recorder saw no events")
	}
	var injected, delivered bool
	for _, e := range evs {
		switch e.Kind {
		case trace.KFlitInjected:
			injected = true
		case trace.KFlitDelivered:
			delivered = true
		}
	}
	if !injected || !delivered {
		t.Fatalf("missing lifecycle events: injected=%v delivered=%v", injected, delivered)
	}
	if res.PostMortem != nil {
		t.Fatal("healthy run produced a post-mortem")
	}
}

// TestRunParallelPerJobRecorders is the parallel-safety check for the
// one-recorder-per-job rule: every job builds its own recorder inside
// Make, and under -race this must be clean.
func TestRunParallelPerJobRecorders(t *testing.T) {
	m := topology.NewMesh(5, 5)
	const njobs = 6
	recs := make([]*trace.Recorder, njobs)
	var mu sync.Mutex
	jobs := make([]Job, njobs)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Label: fmt.Sprintf("job%d", i),
			Make: func() Config {
				rec := trace.New(m.Nodes(), 64)
				mu.Lock()
				recs[i] = rec
				mu.Unlock()
				return Config{
					Graph: m, Algorithm: routing.NewNARA(m),
					Rate: 0.08, Length: 6, Seed: int64(i + 1),
					WarmupCycles: 100, MeasureCycles: 400,
					Recorder: rec,
				}
			},
		}
	}
	out := RunParallel(jobs, 4)
	for i, jr := range out {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if recs[i] == nil || len(recs[i].Events()) == 0 {
			t.Fatalf("job %d recorder saw no events", i)
		}
	}
}
