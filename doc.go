// Package repro is a from-scratch Go reproduction of "A Flexible
// Approach for a Fault-Tolerant Router" (Döring, Obelöer, Lustig,
// Maehle; IPPS/IPDPS Workshops 1998).
//
// The library implements the paper's rule-based routing architecture
// (rule language, ARON table compiler, rule-interpreter machine and
// hardware cost model), the two case-study fault-tolerant routing
// algorithms NAFTA (2-D mesh) and ROUTE_C (hypercube) together with
// their non-fault-tolerant cores, a flit-level wormhole network
// simulator with virtual channels and fault injection, and the
// complete evaluation harness that regenerates the paper's tables.
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for the
// paper-vs-measured results. The benchmarks in bench_test.go (one per
// table/figure) and cmd/tables regenerate every quantitative result.
package repro
