// Quickstart: simulate a fault-tolerant wormhole network in a few
// lines — an 8x8 mesh routed by NAFTA, uniform traffic, one fault
// injected while traffic flows.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	// 1. Topology and routing algorithm.
	mesh := topology.NewMesh(8, 8)
	alg := routing.NewNAFTA(mesh)

	// 2. The cycle-driven wormhole network.
	net := network.New(network.Config{Graph: mesh, Algorithm: alg})

	// 3. Uniform Bernoulli traffic at 0.1 flits/node/cycle.
	gen := &traffic.Generator{
		Graph:   mesh,
		Pattern: traffic.Uniform{Nodes: mesh.Nodes()},
		Rate:    0.1,
		Length:  8,
		Rng:     rand.New(rand.NewSource(1)),
	}

	// 4. Run 1000 cycles, then break a router in the middle of the
	// mesh while messages are in flight.
	for i := 0; i < 1000; i++ {
		gen.Tick(net)
		net.Step()
	}
	f := fault.NewSet()
	f.FailNode(mesh.Node(4, 4))
	net.ApplyFaults(f) // diagnosis runs to its fixpoint before traffic resumes
	fmt.Println("injected fault:", f)

	// 5. Keep the load up for another 2000 cycles; traffic now avoids
	// the failed router.
	gen.Exclude = func(n topology.NodeID) bool { return f.NodeFaulty(n) }
	for i := 0; i < 2000; i++ {
		gen.Tick(net)
		net.Step()
	}
	if !net.Drain(100000) {
		log.Fatal("network did not drain")
	}

	st := net.Stats()
	fmt.Printf("delivered %d of %d messages (%.2f%%)\n",
		st.Delivered, st.Injected, 100*float64(st.Delivered)/float64(st.Injected))
	fmt.Printf("killed by the fault event: %d (reinjected by higher layers)\n", st.Killed)
	fmt.Printf("avg latency %.1f cycles, %.2f misroutes per delivered message\n",
		st.AvgLatency(), float64(st.MisroutesSum)/float64(st.Delivered))
	if st.DeadlockSuspected {
		log.Fatal("deadlock suspected")
	}
	fmt.Println("no deadlock; fault-tolerant routing kept the mesh alive")
}
