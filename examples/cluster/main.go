// Cluster: the paper's opening setting — a workstation cluster wired
// as an irregular switched network ("the nodes of clusters are
// distributed throughout rooms, so faults in the network may not be as
// rare as for dedicated parallel machines"). A random 24-switch fabric
// is routed with table-based up*/down* (the Spider-style approach the
// introduction contrasts with) and with the spanning-tree strawman; a
// switch dies mid-run and both must reconfigure.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	fabric, err := topology.RandomIrregular(24, 12, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %s, %d switches, %d links, max degree %d\n",
		fabric.Name(), fabric.Nodes(), len(topology.Links(fabric)), fabric.Ports())

	victim := topology.NodeID(13)
	tb := metrics.NewTable("Irregular cluster fabric, 0.10 flits/node/cycle, switch 13 dies at cycle 1500",
		"algorithm", "reconfigurations", "killed", "delivered", "avg latency", "links used")

	for _, mk := range []func() routing.Algorithm{
		func() routing.Algorithm { return routing.NewTree(fabric) },
		func() routing.Algorithm { return routing.NewUpDown(fabric) },
	} {
		alg := mk()
		net := network.New(network.Config{Graph: fabric, Algorithm: alg})
		f := fault.NewSet()
		gen := &traffic.Generator{
			Graph:   fabric,
			Pattern: traffic.Uniform{Nodes: fabric.Nodes()},
			Rate:    0.10,
			Length:  8,
			Rng:     rand.New(rand.NewSource(4)),
			Exclude: func(n topology.NodeID) bool { return f.NodeFaulty(n) },
		}
		for cycle := 0; cycle < 4000; cycle++ {
			if cycle == 1500 {
				f.FailNode(victim)
				net.ApplyFaults(f) // diagnosis + table rebuild
			}
			gen.Tick(net)
			net.Step()
		}
		if !net.Drain(200000) {
			log.Fatalf("%s: network did not drain", alg.Name())
		}
		st := net.Stats()
		rebuilds := 0
		switch a := alg.(type) {
		case *routing.Tree:
			rebuilds = a.Rebuilds
		case *routing.UpDown:
			rebuilds = a.Rebuilds
		}
		u := net.Utilization()
		tb.AddRow(alg.Name(), rebuilds, st.Killed,
			fmt.Sprintf("%.3f", st.DeliveredRatio()),
			fmt.Sprintf("%.1f", st.AvgLatency()),
			fmt.Sprintf("%d/%d", u.UsedLinks, u.Links))
		if st.DeadlockSuspected {
			log.Fatalf("%s: deadlock suspected", alg.Name())
		}
	}
	fmt.Println(tb.String())
	fmt.Println("Both designs survive the dead switch only by global reconfiguration —")
	fmt.Println("the table rebuild the paper's flexible rule-based router avoids (its")
	fmt.Println("algorithms update local state; see examples/meshfaults and cmd/tables -exp E12).")
}
