// Meshfaults: graceful-degradation study on a 12x12 mesh. Faults are
// injected incrementally while traffic keeps flowing; after each fault
// event the steady-state latency and delivery ratio of NAFTA are
// compared against the spanning-tree strawman of the paper's Section
// 2.1 and against oblivious XY routing.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	mesh := topology.NewMesh(12, 12)
	tb := metrics.NewTable("Degradation on a 12x12 mesh (0.10 flits/node/cycle, uniform)",
		"algorithm", "node faults", "delivered", "avg latency", "throughput", "p99 latency")

	for _, k := range []int{0, 2, 4, 6, 8, 10} {
		f, err := fault.Random(mesh, fault.RandomOptions{
			Nodes: k, Seed: 7, KeepConnected: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, mk := range []func() routing.Algorithm{
			func() routing.Algorithm { return routing.NewXY(mesh) },
			func() routing.Algorithm { return routing.NewTree(mesh) },
			func() routing.Algorithm { return routing.NewNAFTA(mesh) },
		} {
			alg := mk()
			res, err := sim.Run(sim.Config{
				Graph:          mesh,
				Algorithm:      alg,
				Faults:         f,
				Rate:           0.10,
				Length:         8,
				Seed:           3,
				WarmupCycles:   800,
				MeasureCycles:  3000,
				TrackLatencies: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			tb.AddRow(alg.Name(), k,
				fmt.Sprintf("%.3f", res.Stats.DeliveredRatio()),
				fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()),
				fmt.Sprintf("%.4f", res.Throughput()),
				fmt.Sprintf("%.0f", res.LatencyP99))
		}
	}
	fmt.Println(tb.String())

	// The paper's strawman critique made visible: link utilisation of
	// the spanning tree vs NAFTA on the fault-free mesh.
	util := metrics.NewTable("Link utilisation (fault-free, same workload)",
		"algorithm", "links used", "of", "peak flits", "Gini")
	for _, mk := range []func() routing.Algorithm{
		func() routing.Algorithm { return routing.NewTree(mesh) },
		func() routing.Algorithm { return routing.NewNAFTA(mesh) },
	} {
		alg := mk()
		net := network.New(network.Config{Graph: mesh, Algorithm: alg})
		gen := &traffic.Generator{
			Graph:   mesh,
			Pattern: traffic.Uniform{Nodes: mesh.Nodes()},
			Rate:    0.10,
			Length:  8,
			Rng:     rand.New(rand.NewSource(3)),
		}
		for i := 0; i < 3000; i++ {
			gen.Tick(net)
			net.Step()
		}
		net.Drain(200000)
		u := net.Utilization()
		util.AddRow(alg.Name(), u.UsedLinks, u.Links, u.PeakFlits, fmt.Sprintf("%.2f", u.Gini))
	}
	fmt.Println(util.String())
	fmt.Println("Reading guide: XY loses connectivity as soon as faults hit fixed paths;")
	fmt.Println("the spanning tree delivers everything but concentrates traffic on n-1")
	fmt.Println("links (watch its latency, p99 and Gini); NAFTA keeps delivery near 1.0.")
}
