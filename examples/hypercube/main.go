// Hypercube: ROUTE_C on a faulty 64-node hypercube. Shows the
// safe/unsafe state propagation (the paper's Figure 4 machinery), the
// virtual-channel discipline and the comparison against oblivious
// e-cube routing and the stripped non-fault-tolerant variant.
package main

import (
	"fmt"
	"log"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	cube := topology.NewHypercube(6)

	// Inject n-1 = 5 node faults (the guarantee regime of ROUTE_C).
	f, err := fault.Random(cube, fault.RandomOptions{
		Nodes: 5, Seed: 11, KeepConnected: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fault pattern:", f)

	// Show the diagnosis result: the distributed safe/unsafe states.
	rc := routing.NewRouteC(cube)
	rc.UpdateFaults(f)
	counts := map[routing.NodeState]int{}
	for _, s := range rc.States() {
		counts[s]++
	}
	fmt.Printf("node states after %d propagation rounds: %d safe, %d ounsafe, %d sunsafe, %d faulty\n",
		rc.PropagationRounds,
		counts[routing.StateSafe], counts[routing.StateOUnsafe],
		counts[routing.StateSUnsafe], counts[routing.StateFaulty])
	if rc.TotallyUnsafe() {
		fmt.Println("network is totally unsafe: condition 3 can no longer be guaranteed")
	}

	tb := metrics.NewTable("64-node hypercube, 5 node faults, uniform 0.10 flits/node/cycle",
		"algorithm", "VCs", "delivered", "avg latency", "steps/msg")
	for _, mk := range []func() routing.Algorithm{
		func() routing.Algorithm { return routing.NewECube(cube) },
		func() routing.Algorithm { return routing.NewRouteCNFT(cube) },
		func() routing.Algorithm { return routing.NewRouteC(cube) },
	} {
		alg := mk()
		res, err := sim.Run(sim.Config{
			Graph:         cube,
			Algorithm:     alg,
			Faults:        f,
			Rate:          0.10,
			Length:        8,
			Seed:          5,
			WarmupCycles:  800,
			MeasureCycles: 3000,
		})
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(alg.Name(), alg.NumVCs(),
			fmt.Sprintf("%.3f", res.Stats.DeliveredRatio()),
			fmt.Sprintf("%.1f", res.Stats.AvgNetLatency()),
			fmt.Sprintf("%.2f", res.Stats.AvgSteps()))
	}
	fmt.Println(tb.String())
	fmt.Println("ROUTE_C pays five virtual channels and two rule interpretations per")
	fmt.Println("decision (the paper's fault-tolerance overhead) and in exchange keeps")
	fmt.Println("delivering where e-cube and the stripped variant drop messages.")
}
