// Post-mortem example: attach the flight recorder (internal/trace) to
// a network, force a real wormhole deadlock, and let the watchdog's
// automatic post-mortem name the channel-wait cycle and the blocked
// packets. The same report plumbing powers `ftsim -postmortem DIR`.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
)

// clockwiseRing routes every message clockwise around the outer ring
// of a mesh on a single virtual channel — the textbook deadlock-prone
// discipline (a cyclic channel dependency with nothing to break it).
type clockwiseRing struct {
	m *topology.Mesh
}

func (r *clockwiseRing) Name() string                               { return "clockwise-ring" }
func (r *clockwiseRing) NumVCs() int                                { return 1 }
func (r *clockwiseRing) Steps(routing.Request) int                  { return 1 }
func (r *clockwiseRing) NoteHop(routing.Request, routing.Candidate) {}
func (r *clockwiseRing) UpdateFaults(*fault.Set)                    {}

func (r *clockwiseRing) Route(req routing.Request) []routing.Candidate {
	x, y := r.m.XY(req.Node)
	w, h := r.m.W, r.m.H
	var port int
	switch {
	case y == 0 && x < w-1:
		port = topology.East
	case x == w-1 && y < h-1:
		port = topology.North
	case y == h-1 && x > 0:
		port = topology.West
	default:
		port = topology.South
	}
	return []routing.Candidate{{Port: port, VC: 0}}
}

func main() {
	mesh := topology.NewMesh(3, 3)

	// 1. A flight recorder: one small ring buffer per node. Recording
	// is observation only — with a nil recorder the network runs the
	// exact same simulation.
	rec := trace.New(mesh.Nodes(), 64)

	// 2. The network, with the recorder attached and an automatic
	// post-mortem hook. The watchdog certifies a deadlock when no flit
	// moves for WatchdogCycles.
	var report *trace.Report
	net := network.New(network.Config{
		Graph:          mesh,
		Algorithm:      &clockwiseRing{m: mesh},
		BufDepth:       2,
		WatchdogCycles: 200,
		Recorder:       rec,
		OnPostMortem:   func(r *trace.Report) { report = r },
	})

	// 3. One long worm injected at each ring corner, each destined
	// "around its corner", so all four ring segments are claimed at
	// once and every head waits on the next worm's tail: a certain
	// circular wait.
	corners := []struct{ src, dst topology.NodeID }{
		{mesh.Node(0, 0), mesh.Node(2, 1)},
		{mesh.Node(2, 0), mesh.Node(1, 2)},
		{mesh.Node(2, 2), mesh.Node(0, 1)},
		{mesh.Node(0, 2), mesh.Node(1, 0)},
	}
	for _, c := range corners {
		net.Inject(c.src, c.dst, 24)
	}

	for i := 0; i < 600 && report == nil; i++ {
		net.Step()
	}
	if report == nil {
		log.Fatal("expected a deadlock post-mortem")
	}

	// 4. The human-readable summary names the circular wait and each
	// blocked packet's position, age and wait-for edges...
	fmt.Print(report.String())

	// ...and the full report (router snapshots plus the recorder's
	// event tail) serialises to JSON for offline analysis.
	f, err := os.CreateTemp("", "postmortem-*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := report.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull report (%d recorded events) written to %s\n",
		len(report.Events), f.Name())
}
