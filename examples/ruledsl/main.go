// Ruledsl: author a custom routing algorithm in the rule language,
// compile it with the ARON compiler, inspect the hardware cost and
// execute decisions both through the reference evaluator and the
// compiled rule table — the full "flexible router" workflow of the
// paper. The example algorithm is a small west-first mesh router with
// a congestion rule.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rules"
)

// A west-first routing algorithm (turn model): all west hops first,
// then fully adaptive among the remaining profitable directions, with
// a load tie-break. Directions: 0=north, 1=east, 2=south, 3=west.
const source = `
CONSTANT dirs = 4
CONSTANT signs = {neg, zero, pos}

INPUT dxsign IN signs
INPUT dysign IN signs
INPUT load (dirs) IN 0 TO 15
INPUT free (dirs) IN 0 TO 1

VARIABLE served (dirs) IN 0 TO 255

ON decide(invc IN 0 TO 1)
  -- west-first: any westward component must be resolved first
  IF dxsign = neg AND free(3) = 1 THEN
     RETURN(3), served(3) <- served(3) + 1;
  -- east vs vertical, least-loaded wins (east on ties)
  IF dxsign = pos AND free(1) = 1 AND
     NOT (dysign = pos AND free(0) = 1 AND load(0) < load(1)) AND
     NOT (dysign = neg AND free(2) = 1 AND load(2) < load(1)) THEN
     RETURN(1), served(1) <- served(1) + 1;
  IF dysign = pos AND free(0) = 1 THEN
     RETURN(0), served(0) <- served(0) + 1;
  IF dysign = neg AND free(2) = 1 THEN
     RETURN(2), served(2) <- served(2) + 1;
END decide;
`

func main() {
	// 1. Parse and type-check.
	prog, err := rules.Parse(source)
	if err != nil {
		log.Fatal(err)
	}
	checked, err := rules.Analyze(prog)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Compile to the ARON rule table and report the hardware cost.
	cb, err := core.CompileBase(checked, "decide", core.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled rule table: %s = %d bits\n", cb.Dim(), cb.MemoryBits())
	fmt.Printf("index: %d direct fields, %d feature bits\n", len(cb.Fields), len(cb.Atoms))
	for _, f := range cb.Fields {
		fmt.Printf("  field   %-12s (%d values)\n", f.Key, f.Type.DomainSize())
	}
	for _, a := range cb.Atoms {
		fmt.Printf("  feature %s\n", a.Key)
	}
	for _, f := range core.InventoryFCFBs(checked, prog.RuleBaseByName("decide")) {
		fmt.Printf("  FCFB    %d x %s\n", f.Count, f.Kind)
	}

	// 3. Execute a decision: a message heading north-east with the
	// northern output congested.
	inputs := map[string]rules.Value{
		"dxsign": checked.Symbols["pos"],
		"dysign": checked.Symbols["pos"],
		"load/0": rules.IntVal(9), "load/1": rules.IntVal(2),
		"load/2": rules.IntVal(0), "load/3": rules.IntVal(0),
		"free/0": rules.IntVal(1), "free/1": rules.IntVal(1),
		"free/2": rules.IntVal(1), "free/3": rules.IntVal(1),
	}
	machine := core.NewMachine(checked, func(name string, idx []int64) (rules.Value, error) {
		k := name
		for _, i := range idx {
			k += fmt.Sprintf("/%d", i)
		}
		v, ok := inputs[k]
		if !ok {
			return rules.Value{}, fmt.Errorf("unset input %s", k)
		}
		return v, nil
	})

	// Reference evaluator (premises evaluated one by one) ...
	ruleIdx, ret, err := machine.InvokeNow("decide", rules.IntVal(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreference evaluator: rule %d fires, output port %v\n", ruleIdx, ret)

	// ... and the hardware path: one table lookup selects the same
	// rule.
	tblIdx, err := cb.LookupRule([]rules.Value{rules.IntVal(0)}, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ARON table lookup:   rule %d selected\n", tblIdx)
	if tblIdx != ruleIdx {
		log.Fatal("table and reference disagree — compiler bug")
	}

	served, _ := machine.Get("served", 1)
	fmt.Printf("state after the decision: served(east) = %v\n", served)
	fmt.Println("\nthe message goes east: the west-first rule does not apply, and the")
	fmt.Println("northern output loses the adaptivity comparison (load 9 vs 2).")
}
